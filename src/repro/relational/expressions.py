"""Expression trees with SQL three-valued logic.

Expressions appear in ``SELECT`` lists, ``WHERE``/``HAVING`` clauses, join
conditions and index definitions.  Each node supports:

* ``compile(ctx)`` — produce a fast ``row -> value`` closure, resolving
  column references through ``ctx.resolver`` once (no per-row name lookups);
* ``compile_batch(ctx)`` — produce a vectorized ``(columns, positions) ->
  values`` closure for the batch executor: *columns* are the input batch's
  per-column lists, *positions* the live positions to evaluate (a ``range``
  when the whole batch is live), and the result is a list of values aligned
  with *positions*.  Nodes without a specialized kernel inherit a generic
  fallback that drives the row closure over a reusable
  :class:`~repro.relational.batch.BatchRow` view — correctness never
  depends on a node being vectorized;
* ``references()`` — the set of ``(qualifier, column)`` pairs it reads,
  used by the planner for pushdown and join analysis;
* ``fingerprint()`` — a canonical string used to match predicates against
  expression indexes (e.g. an index over ``JSON_VAL(attr, 'name')``).

NULL semantics follow SQL: comparisons and arithmetic with NULL yield NULL
(``None``); AND/OR use Kleene logic; WHERE treats NULL as false.  The
batch kernels implement the exact same three-valued logic elementwise.
"""

from __future__ import annotations

import math
import re

from repro.relational.batch import BatchRow
from repro.relational.errors import BindError, TypeMismatchError
from repro.relational.index import total_order_key
from repro.relational.schema import ColumnType, coerce_value


class CompileContext:
    """Everything an expression needs to compile itself.

    :param resolver: callable ``(qualifier, column) -> position`` mapping a
        column reference to its offset in the row tuple.
    :param functions: scalar function registry ``name -> callable``.
    :param subquery_executor: callable ``plan -> list[row]`` used by IN/EXISTS
        subqueries (installed by the planner).
    :param params: positional parameter values for this execution; ``?``
        placeholders bind against this vector at compile time, which lets a
        cached (shared) AST be re-planned with fresh constants.
    """

    def __init__(self, resolver, functions=None, subquery_executor=None,
                 params=None):
        self.resolver = resolver
        self.functions = functions or {}
        self.subquery_executor = subquery_executor
        self.params = params


class Expression:
    """Base class of all expression nodes."""

    def compile(self, ctx):
        raise NotImplementedError

    def compile_batch(self, ctx):
        """Vectorized compilation: ``(columns, positions) -> list[value]``.

        The generic fallback evaluates the row closure once per live
        position through a reusable :class:`BatchRow` view, so stateful
        nodes (subqueries) and rarely-hot nodes stay correct without a
        dedicated kernel.  Subclasses on the hot path override this with
        elementwise loops over the input column lists.
        """
        fn = self.compile(ctx)

        def evaluate(columns, positions, _fn=fn):
            row = BatchRow(columns)
            out = []
            append = out.append
            for i in positions:
                row.i = i
                append(_fn(row))
            return out

        return evaluate

    def references(self):
        return set()

    def fingerprint(self):
        raise NotImplementedError(f"no fingerprint for {type(self).__name__}")

    def children(self):
        return ()

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()


class Literal(Expression):
    def __init__(self, value):
        self.value = value

    def compile(self, ctx):
        value = self.value
        return lambda row: value

    def compile_batch(self, ctx):
        value = self.value
        return lambda columns, positions: [value] * len(positions)

    def fingerprint(self):
        return repr(self.value)

    def __repr__(self):
        return f"Literal({self.value!r})"


class Parameter(Expression):
    """A ``?`` placeholder, bound from ``CompileContext.params`` at compile
    time.  The AST itself is never mutated, so prepared statements can be
    re-executed with different parameter vectors."""

    def __init__(self, index):
        self.index = index

    def compile(self, ctx):
        params = ctx.params
        if params is None or self.index >= len(params):
            have = 0 if params is None else len(params)
            raise BindError(
                f"statement requires parameter {self.index + 1}, got {have}"
            )
        value = params[self.index]
        return lambda row: value

    def compile_batch(self, ctx):
        fn = self.compile(ctx)  # validates the parameter vector
        value = fn(None)
        return lambda columns, positions: [value] * len(positions)

    def fingerprint(self):
        # parameters are per-execution constants; an identity fingerprint
        # would let a plan structure leak across different bound values, so
        # refuse (callers guard fingerprint() with try/except).
        raise NotImplementedError("no fingerprint for Parameter")

    def __repr__(self):
        return f"Parameter({self.index})"


class ColumnRef(Expression):
    def __init__(self, qualifier, name):
        self.qualifier = qualifier.lower() if qualifier else None
        self.name = name.lower()

    def compile(self, ctx):
        position = ctx.resolver(self.qualifier, self.name)
        return lambda row: row[position]

    def compile_batch(self, ctx):
        position = ctx.resolver(self.qualifier, self.name)

        def evaluate(columns, positions, _position=position):
            column = columns[_position]
            if type(positions) is range:
                # whole batch live: hand back the column list itself
                # (zero-copy — batches are immutable once yielded)
                return column
            return [column[i] for i in positions]

        return evaluate

    def references(self):
        return {(self.qualifier, self.name)}

    def fingerprint(self):
        return f"col({self.name})"

    def __repr__(self):
        if self.qualifier:
            return f"ColumnRef({self.qualifier}.{self.name})"
        return f"ColumnRef({self.name})"


_NUMERIC = (int, float)


def _arith(op, left, right):
    if left is None or right is None:
        return None
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return None
            result = left / right
            if isinstance(left, int) and isinstance(right, int) and left % right == 0:
                return left // right
            return result
        if op == "%":
            if right == 0:
                return None
            return left % right
        if op == "||":
            # sequence-valued left operand: append (path building); the
            # Gremlin translator stores traversal paths as tuples
            if isinstance(left, (list, tuple)):
                return tuple(left) + (right,)
            return _as_string(left) + _as_string(right)
    except TypeError as exc:
        raise TypeMismatchError(
            f"cannot apply {op!r} to {type(left).__name__} and {type(right).__name__}"
        ) from exc
    raise TypeMismatchError(f"unknown arithmetic operator {op!r}")


def _as_string(value):
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


class BinaryOp(Expression):
    """Arithmetic and string concatenation: ``+ - * / % ||``."""

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def compile(self, ctx):
        op = self.op
        left = self.left.compile(ctx)
        right = self.right.compile(ctx)
        return lambda row: _arith(op, left(row), right(row))

    def compile_batch(self, ctx):
        op = self.op
        left = self.left.compile_batch(ctx)
        right = self.right.compile_batch(ctx)

        def evaluate(columns, positions):
            lefts = left(columns, positions)
            rights = right(columns, positions)
            return [_arith(op, a, b) for a, b in zip(lefts, rights)]

        return evaluate

    def references(self):
        return self.left.references() | self.right.references()

    def fingerprint(self):
        return f"({self.left.fingerprint()}{self.op}{self.right.fingerprint()})"


def compare_values(op, left, right):
    """SQL comparison with 3VL and a cross-type total order.

    Returns True/False, or ``None`` when either side is NULL.
    """
    if left is None or right is None:
        return None
    if op == "=":
        return _sql_equal(left, right)
    if op in ("<>", "!="):
        return not _sql_equal(left, right)
    left_key = total_order_key(left)
    right_key = total_order_key(right)
    if op == "<":
        return left_key < right_key
    if op == "<=":
        return left_key <= right_key
    if op == ">":
        return right_key < left_key
    if op == ">=":
        return right_key <= left_key
    raise TypeMismatchError(f"unknown comparison operator {op!r}")


def _sql_equal(left, right):
    if isinstance(left, bool) or isinstance(right, bool):
        return left is right if isinstance(left, bool) and isinstance(right, bool) else False
    if isinstance(left, _NUMERIC) and isinstance(right, _NUMERIC):
        return left == right
    if type(left) is type(right):
        return left == right
    if isinstance(left, str) != isinstance(right, str):
        return False
    return left == right


class Comparison(Expression):
    def __init__(self, op, left, right):
        self.op = "<>" if op == "!=" else op
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def compile(self, ctx):
        op = self.op
        left = self.left.compile(ctx)
        right = self.right.compile(ctx)
        return lambda row: compare_values(op, left(row), right(row))

    def compile_batch(self, ctx):
        op = self.op
        # constant-vs-column equality is THE hot-path predicate shape
        # (``t.lbl = 'name'`` over unnested triads); specialize it so the
        # inner loop compares against a bound scalar with no dispatch.
        for value_side, const_side in (
            (self.left, self.right),
            (self.right, self.left),
        ):
            bound, constant = _constant_of(const_side, ctx)
            if bound and op in ("=", "<>"):
                values_fn = value_side.compile_batch(ctx)
                negate = op == "<>"

                def evaluate(columns, positions, _values=values_fn,
                             _const=constant, _negate=negate):
                    values = _values(columns, positions)
                    if _const is None:
                        return [None] * len(values)
                    out = []
                    append = out.append
                    for value in values:
                        if value is None:
                            append(None)
                        else:
                            equal = _sql_equal(value, _const)
                            append((not equal) if _negate else equal)
                    return out

                return evaluate
        left = self.left.compile_batch(ctx)
        right = self.right.compile_batch(ctx)

        def evaluate(columns, positions):
            lefts = left(columns, positions)
            rights = right(columns, positions)
            return [compare_values(op, a, b) for a, b in zip(lefts, rights)]

        return evaluate

    def references(self):
        return self.left.references() | self.right.references()

    def fingerprint(self):
        return f"({self.left.fingerprint()}{self.op}{self.right.fingerprint()})"


def _constant_of(node, ctx):
    """``(True, value)`` when *node* is a plan-time constant, else
    ``(False, None)``.  Used by batch kernels to bind one comparison side
    up front."""
    if isinstance(node, Literal):
        return True, node.value
    if isinstance(node, Parameter):
        params = ctx.params
        if params is None or node.index >= len(params):
            return False, None  # let compile() raise the precise BindError
        return True, params[node.index]
    return False, None


class And(Expression):
    def __init__(self, items):
        self.items = list(items)

    def children(self):
        return tuple(self.items)

    def compile(self, ctx):
        compiled = [item.compile(ctx) for item in self.items]

        def evaluate(row):
            saw_null = False
            for fn in compiled:
                value = fn(row)
                if value is None:
                    saw_null = True
                elif not value:
                    return False
            return None if saw_null else True

        return evaluate

    def compile_batch(self, ctx):
        compiled = [item.compile_batch(ctx) for item in self.items]

        def evaluate(columns, positions):
            result = [True] * len(positions)
            for fn in compiled:
                values = fn(columns, positions)
                for i, value in enumerate(values):
                    current = result[i]
                    if current is False:
                        continue
                    if value is None:
                        if current is True:
                            result[i] = None
                    elif not value:
                        result[i] = False
            return result

        return evaluate

    def references(self):
        refs = set()
        for item in self.items:
            refs |= item.references()
        return refs

    def fingerprint(self):
        return "and(" + ",".join(item.fingerprint() for item in self.items) + ")"


class Or(Expression):
    def __init__(self, items):
        self.items = list(items)

    def children(self):
        return tuple(self.items)

    def compile(self, ctx):
        compiled = [item.compile(ctx) for item in self.items]

        def evaluate(row):
            saw_null = False
            for fn in compiled:
                value = fn(row)
                if value is None:
                    saw_null = True
                elif value:
                    return True
            return None if saw_null else False

        return evaluate

    def compile_batch(self, ctx):
        compiled = [item.compile_batch(ctx) for item in self.items]

        def evaluate(columns, positions):
            result = [False] * len(positions)
            for fn in compiled:
                values = fn(columns, positions)
                for i, value in enumerate(values):
                    current = result[i]
                    if current is True:
                        continue
                    if value is None:
                        if current is False:
                            result[i] = None
                    elif value:
                        result[i] = True
            return result

        return evaluate

    def references(self):
        refs = set()
        for item in self.items:
            refs |= item.references()
        return refs

    def fingerprint(self):
        return "or(" + ",".join(item.fingerprint() for item in self.items) + ")"


class Not(Expression):
    def __init__(self, operand):
        self.operand = operand

    def children(self):
        return (self.operand,)

    def compile(self, ctx):
        operand = self.operand.compile(ctx)

        def evaluate(row):
            value = operand(row)
            if value is None:
                return None
            return not value

        return evaluate

    def compile_batch(self, ctx):
        operand = self.operand.compile_batch(ctx)

        def evaluate(columns, positions):
            return [
                None if value is None else not value
                for value in operand(columns, positions)
            ]

        return evaluate

    def references(self):
        return self.operand.references()

    def fingerprint(self):
        return f"not({self.operand.fingerprint()})"


class IsNull(Expression):
    def __init__(self, operand, negated=False):
        self.operand = operand
        self.negated = negated

    def children(self):
        return (self.operand,)

    def compile(self, ctx):
        operand = self.operand.compile(ctx)
        if self.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None

    def compile_batch(self, ctx):
        operand = self.operand.compile_batch(ctx)
        if self.negated:
            return lambda columns, positions: [
                value is not None for value in operand(columns, positions)
            ]
        return lambda columns, positions: [
            value is None for value in operand(columns, positions)
        ]

    def references(self):
        return self.operand.references()

    def fingerprint(self):
        word = "isnotnull" if self.negated else "isnull"
        return f"{word}({self.operand.fingerprint()})"


def like_to_regex(pattern):
    """Translate a SQL LIKE pattern to a compiled, anchored regex."""
    parts = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("^" + "".join(parts) + "$", re.DOTALL)


class Like(Expression):
    def __init__(self, operand, pattern, negated=False):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated

    def children(self):
        return (self.operand, self.pattern)

    def compile(self, ctx):
        operand = self.operand.compile(ctx)
        pattern = self.pattern.compile(ctx)
        negated = self.negated
        cache = {}

        def evaluate(row):
            value = operand(row)
            pat = pattern(row)
            if value is None or pat is None:
                return None
            regex = cache.get(pat)
            if regex is None:
                regex = cache[pat] = like_to_regex(pat)
            matched = regex.match(_as_string(value)) is not None
            return (not matched) if negated else matched

        return evaluate

    def compile_batch(self, ctx):
        operand = self.operand.compile_batch(ctx)
        pattern = self.pattern.compile_batch(ctx)
        negated = self.negated
        cache = {}

        def evaluate(columns, positions):
            values = operand(columns, positions)
            patterns = pattern(columns, positions)
            out = []
            append = out.append
            for value, pat in zip(values, patterns):
                if value is None or pat is None:
                    append(None)
                    continue
                regex = cache.get(pat)
                if regex is None:
                    regex = cache[pat] = like_to_regex(pat)
                matched = regex.match(_as_string(value)) is not None
                append((not matched) if negated else matched)
            return out

        return evaluate

    def references(self):
        return self.operand.references() | self.pattern.references()

    def fingerprint(self):
        word = "notlike" if self.negated else "like"
        return f"{word}({self.operand.fingerprint()},{self.pattern.fingerprint()})"


class InList(Expression):
    def __init__(self, operand, items, negated=False):
        self.operand = operand
        self.items = list(items)
        self.negated = negated

    def children(self):
        return (self.operand, *self.items)

    def compile(self, ctx):
        operand = self.operand.compile(ctx)
        compiled = [item.compile(ctx) for item in self.items]
        negated = self.negated

        def evaluate(row):
            value = operand(row)
            if value is None:
                return None
            saw_null = False
            for fn in compiled:
                candidate = fn(row)
                if candidate is None:
                    saw_null = True
                elif compare_values("=", value, candidate):
                    return not negated
            if saw_null:
                return None
            return negated

        return evaluate

    def references(self):
        refs = self.operand.references()
        for item in self.items:
            refs |= item.references()
        return refs

    def fingerprint(self):
        inner = ",".join(item.fingerprint() for item in self.items)
        word = "notin" if self.negated else "in"
        return f"{word}({self.operand.fingerprint()},[{inner}])"


class InSubquery(Expression):
    """``x IN (SELECT ...)`` — the subquery plan is evaluated lazily once."""

    def __init__(self, operand, plan, negated=False):
        self.operand = operand
        self.plan = plan
        self.negated = negated

    def children(self):
        return (self.operand,)

    def compile(self, ctx):
        operand = self.operand.compile(ctx)
        negated = self.negated
        executor = ctx.subquery_executor
        if executor is None:
            raise BindError("subquery used in a context without an executor")
        plan = self.plan
        state = {}

        def evaluate(row):
            if "values" not in state:
                values = set()
                saw_null = False
                for subrow in executor(plan):
                    if subrow[0] is None:
                        saw_null = True
                    else:
                        values.add(subrow[0])
                state["values"] = values
                state["saw_null"] = saw_null
            value = operand(row)
            if value is None:
                return None
            if value in state["values"]:
                return not negated
            if state["saw_null"]:
                return None
            return negated

        return evaluate

    def references(self):
        return self.operand.references()


class Exists(Expression):
    """``EXISTS (SELECT ...)`` for non-correlated subqueries."""

    def __init__(self, plan, negated=False):
        self.plan = plan
        self.negated = negated

    def compile(self, ctx):
        executor = ctx.subquery_executor
        if executor is None:
            raise BindError("subquery used in a context without an executor")
        plan = self.plan
        negated = self.negated
        state = {}

        def evaluate(row):
            if "result" not in state:
                state["result"] = any(True for __ in executor(plan))
            return (not state["result"]) if negated else state["result"]

        return evaluate


class Cast(Expression):
    def __init__(self, operand, target_type):
        self.operand = operand
        self.target_type = target_type

    def children(self):
        return (self.operand,)

    def compile(self, ctx):
        operand = self.operand.compile(ctx)
        target = self.target_type

        def evaluate(row):
            value = operand(row)
            if value is None:
                return None
            try:
                return coerce_value(value, target)
            except TypeMismatchError:
                return None

        return evaluate

    def compile_batch(self, ctx):
        operand = self.operand.compile_batch(ctx)
        target = self.target_type

        def evaluate(columns, positions):
            out = []
            append = out.append
            for value in operand(columns, positions):
                if value is None:
                    append(None)
                    continue
                try:
                    append(coerce_value(value, target))
                except TypeMismatchError:
                    append(None)
            return out

        return evaluate

    def references(self):
        return self.operand.references()

    def fingerprint(self):
        return f"cast({self.operand.fingerprint()},{self.target_type.value})"


class CaseWhen(Expression):
    def __init__(self, whens, otherwise=None):
        self.whens = list(whens)
        self.otherwise = otherwise

    def children(self):
        kids = []
        for cond, result in self.whens:
            kids.append(cond)
            kids.append(result)
        if self.otherwise is not None:
            kids.append(self.otherwise)
        return tuple(kids)

    def compile(self, ctx):
        compiled = [(cond.compile(ctx), result.compile(ctx)) for cond, result in self.whens]
        otherwise = self.otherwise.compile(ctx) if self.otherwise is not None else None

        def evaluate(row):
            for cond, result in compiled:
                if cond(row):
                    return result(row)
            if otherwise is not None:
                return otherwise(row)
            return None

        return evaluate

    def references(self):
        refs = set()
        for child in self.children():
            refs |= child.references()
        return refs


class ScalarSubquery(Expression):
    """``(SELECT ...)`` used as a scalar value: first column of first row."""

    def __init__(self, plan):
        self.plan = plan

    def compile(self, ctx):
        executor = ctx.subquery_executor
        if executor is None:
            raise BindError("subquery used in a context without an executor")
        plan = self.plan
        state = {}

        def evaluate(row):
            if "value" not in state:
                rows = list(executor(plan))
                state["value"] = rows[0][0] if rows else None
            return state["value"]

        return evaluate


class FuncCall(Expression):
    """A scalar function call resolved from the database registry.

    ``star`` marks ``COUNT(*)``; ``distinct`` marks ``COUNT(DISTINCT x)`` and
    friends.  Both only make sense for aggregates and are interpreted by the
    binder.
    """

    def __init__(self, name, args, star=False, distinct=False):
        self.name = name.lower()
        self.args = list(args)
        self.star = star
        self.distinct = distinct

    def children(self):
        return tuple(self.args)

    def compile(self, ctx):
        if self.name == "coalesce":
            compiled = [arg.compile(ctx) for arg in self.args]

            def evaluate(row):
                for fn in compiled:
                    value = fn(row)
                    if value is not None:
                        return value
                return None

            return evaluate
        function = ctx.functions.get(self.name)
        if function is None:
            raise BindError(f"unknown function {self.name!r}")
        compiled = [arg.compile(ctx) for arg in self.args]
        return lambda row: function(*[fn(row) for fn in compiled])

    def compile_batch(self, ctx):
        if self.name == "coalesce":
            compiled = [arg.compile_batch(ctx) for arg in self.args]

            def evaluate(columns, positions):
                if not compiled:
                    return [None] * len(positions)
                arg_lists = [fn(columns, positions) for fn in compiled]
                out = []
                append = out.append
                for values in zip(*arg_lists):
                    for value in values:
                        if value is not None:
                            append(value)
                            break
                    else:
                        append(None)
                return out

            return evaluate
        function = ctx.functions.get(self.name)
        if function is None:
            raise BindError(f"unknown function {self.name!r}")
        compiled = [arg.compile_batch(ctx) for arg in self.args]

        def evaluate(columns, positions):
            if not compiled:
                return [function() for __ in range(len(positions))]
            arg_lists = [fn(columns, positions) for fn in compiled]
            return [function(*values) for values in zip(*arg_lists)]

        return evaluate

    def references(self):
        refs = set()
        for arg in self.args:
            refs |= arg.references()
        return refs

    def fingerprint(self):
        inner = ",".join(arg.fingerprint() for arg in self.args)
        return f"{self.name}({inner})"

    def __repr__(self):
        return f"FuncCall({self.name}, {self.args!r})"


# ----------------------------------------------------------------------
# built-in scalar functions
# ----------------------------------------------------------------------
def json_val(document, path):
    """Extract a value from a JSON document by (dotted) key path.

    Missing keys or non-object intermediates yield NULL, matching the
    permissive behaviour of DB2's JSON_VAL / SQLite's json_extract.
    """
    if document is None or path is None:
        return None
    current = document
    for part in str(path).split("."):
        if isinstance(current, dict):
            current = current.get(part)
        elif isinstance(current, list):
            try:
                current = current[int(part)]
            except (ValueError, IndexError):
                return None
        else:
            return None
        if current is None:
            return None
    return current


def _sql_upper(value):
    return value.upper() if isinstance(value, str) else value


def _sql_lower(value):
    return value.lower() if isinstance(value, str) else value


def _sql_length(value):
    if value is None:
        return None
    return len(_as_string(value))


def _sql_abs(value):
    if value is None:
        return None
    return abs(value)


def _sql_substr(value, start, length=None):
    if value is None or start is None:
        return None
    text = _as_string(value)
    begin = max(int(start) - 1, 0)
    if length is None:
        return text[begin:]
    return text[begin : begin + int(length)]


def _sql_sqrt(value):
    if value is None or value < 0:
        return None
    return math.sqrt(value)


def is_simple_path(path):
    """UDF used by the Gremlin translator: True iff *path* has no repeats."""
    if path is None:
        return None
    return 1 if len(path) == len(set(path)) else 0


def path_init(value):
    """Start a traversal path: a one-element tuple."""
    return (value,)


def element_at(sequence, index):
    """0-based element access with NULL on out-of-range / NULL input."""
    if sequence is None or index is None:
        return None
    try:
        return sequence[int(index)]
    except (IndexError, TypeError):
        return None


def path_prefix(sequence, index):
    """First ``index + 1`` elements of a path (used by the back pipe)."""
    if sequence is None or index is None:
        return None
    return tuple(sequence[: int(index) + 1])


def path_length(sequence):
    if sequence is None:
        return None
    return len(sequence)


def make_list(*values):
    """Variadic tuple constructor (used by the Gremlin select pipe)."""
    return tuple(values)


def default_functions():
    """The scalar function registry every new Database starts with."""
    return {
        "json_val": json_val,
        "upper": _sql_upper,
        "lower": _sql_lower,
        "length": _sql_length,
        "abs": _sql_abs,
        "substr": _sql_substr,
        "sqrt": _sql_sqrt,
        "issimplepath": is_simple_path,
        "path_init": path_init,
        "element_at": element_at,
        "path_prefix": path_prefix,
        "path_length": path_length,
        "make_list": make_list,
    }


AGGREGATE_FUNCTIONS = {"count", "sum", "avg", "min", "max"}


def substitute_parameters(expression, params):
    """Replace :class:`Parameter` nodes with Literals from *params* in place.

    Returns the (possibly replaced) expression.
    """
    if isinstance(expression, Parameter):
        if params is None or expression.index >= len(params):
            raise BindError(
                f"statement requires parameter {expression.index + 1}, "
                f"got {0 if params is None else len(params)}"
            )
        return Literal(params[expression.index])
    for attr in ("left", "right", "operand", "pattern", "otherwise"):
        child = getattr(expression, attr, None)
        if isinstance(child, Expression):
            setattr(expression, attr, substitute_parameters(child, params))
    for attr in ("items", "args"):
        children = getattr(expression, attr, None)
        if isinstance(children, list):
            for i, child in enumerate(children):
                if isinstance(child, Expression):
                    children[i] = substitute_parameters(child, params)
    whens = getattr(expression, "whens", None)
    if isinstance(whens, list):
        for i, (cond, result) in enumerate(whens):
            whens[i] = (
                substitute_parameters(cond, params),
                substitute_parameters(result, params),
            )
    return expression
