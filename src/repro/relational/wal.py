"""Write-ahead logging: record framing, group commit, torn-tail detection.

The log is a single append-only file of framed records::

    +----------------+----------------+======================+
    | length (u32le) | crc32 (u32le)  | payload (length B)   |
    +----------------+----------------+======================+

``payload`` is the pickle of ``(lsn, kind, txid, data)``.  LSNs are
monotonically increasing record sequence numbers that survive log
truncation (checkpoints persist the latest LSN in the snapshot), so a
recovery that finds records already covered by the snapshot simply skips
them.  A record whose frame is incomplete or whose CRC does not match is a
*torn tail*: it and everything after it is discarded — by construction that
can only be the unsynced suffix of the last crash.

Record kinds
------------

=============  =====================================================
``insert``     redo: row ``data=(table, rid, row)``
``update``     redo+undo images ``data=(table, rid, new_row, old_row)``
``delete``     undo image ``data=(table, rid, old_row)``
``ddl``        statement text ``data=sql`` (replayed through the parser)
``meta``       durable key/value ``data=(key, value)`` (non-transactional)
``commit``     transaction ``txid`` is durable
``abort``      transaction ``txid`` rolled back
``checkpoint`` first record of a fresh log, ``data={"snapshot_lsn": n}``
=============  =====================================================

Transaction id ``0`` means *autocommitted*: the record is made durable by
the next commit point and recovery redoes it unconditionally.  Explicit
transactions log their ops under a nonzero txid; only ops whose ``commit``
record survives in the log are redone (losers are skipped wholesale, which
is why no undo pass is needed — see docs/ARCHITECTURE.md).

Durability knobs (environment, mirrored by constructor kwargs)
--------------------------------------------------------------

``REPRO_WAL_FSYNC``
    ``always`` — fsync at every commit point (fsync-per-commit);
    ``group`` — batched fsync: at most one fsync per
    ``REPRO_WAL_GROUP_WINDOW_MS`` window, commits inside the window return
    after the OS write only (the default);
    ``off`` — never fsync (buffered writes still reach the OS at every
    commit point, so a *process* crash loses nothing — only an OS/power
    failure can).
``REPRO_WAL_GROUP_WINDOW_MS``
    group-commit batching window in milliseconds (default 5).
``REPRO_WAL_CHECKPOINT_EVERY``
    records between automatic checkpoints (default 10000; 0 disables).
``REPRO_WAL_FSYNC_LATENCY_MS``
    simulated log-device latency added to every fsync (default 0 = off).
    Benchmarks use it the same way the client/server suites use
    ``ClientServerLink`` round-trip sleeps (see EXPERIMENTS.md): CI
    filesystems acknowledge fsync in ~0.1ms, so commit-path effects that
    dominate on production devices (and in the paper's era of disks)
    vanish; the sleep restores a realistic serialization point per log
    file while leaving correctness paths untouched.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import zlib
from time import monotonic, sleep

from repro.obs.metrics import ENGINE_METRICS

#: frame header: payload length + CRC32 of the payload, little-endian u32s
FRAME = struct.Struct("<II")

FSYNC_ALWAYS = "always"
FSYNC_GROUP = "group"
FSYNC_OFF = "off"
FSYNC_MODES = (FSYNC_ALWAYS, FSYNC_GROUP, FSYNC_OFF)

# registry mirrors of the per-log counters (see docs/OBSERVABILITY.md)
_RECORDS = ENGINE_METRICS.counter("wal.records")
_FSYNCS = ENGINE_METRICS.counter("wal.fsyncs")
_REPLAYED = ENGINE_METRICS.counter("wal.replayed")
_CHECKPOINTS = ENGINE_METRICS.counter("wal.checkpoints")


def resolve_fsync_mode(explicit=None):
    """Fsync mode from an explicit value or ``REPRO_WAL_FSYNC``."""
    mode = explicit or os.environ.get("REPRO_WAL_FSYNC", "") or FSYNC_GROUP
    mode = mode.strip().lower()
    if mode not in FSYNC_MODES:
        raise ValueError(
            f"unknown WAL fsync mode {mode!r} (expected one of {FSYNC_MODES})"
        )
    return mode


def resolve_group_window(explicit=None):
    """Group-commit window in seconds (``REPRO_WAL_GROUP_WINDOW_MS``)."""
    if explicit is not None:
        return max(0.0, float(explicit)) / 1000.0
    raw = os.environ.get("REPRO_WAL_GROUP_WINDOW_MS", "")
    try:
        return max(0.0, float(raw)) / 1000.0 if raw else 0.005
    except ValueError:
        return 0.005


def resolve_fsync_latency(explicit=None):
    """Simulated fsync latency in seconds (``REPRO_WAL_FSYNC_LATENCY_MS``)."""
    if explicit is not None:
        return max(0.0, float(explicit)) / 1000.0
    raw = os.environ.get("REPRO_WAL_FSYNC_LATENCY_MS", "")
    try:
        return max(0.0, float(raw)) / 1000.0 if raw else 0.0
    except ValueError:
        return 0.0


def resolve_checkpoint_every(explicit=None):
    """Auto-checkpoint record threshold (``REPRO_WAL_CHECKPOINT_EVERY``)."""
    if explicit is not None:
        return max(0, int(explicit))
    raw = os.environ.get("REPRO_WAL_CHECKPOINT_EVERY", "")
    try:
        return max(0, int(raw)) if raw else 10_000
    except ValueError:
        return 10_000


class TornTail:
    """Where and why a log scan stopped before end-of-file."""

    __slots__ = ("offset", "reason")

    def __init__(self, offset, reason):
        self.offset = offset
        self.reason = reason

    def __repr__(self):
        return f"TornTail(offset={self.offset}, reason={self.reason!r})"


def scan_log(path):
    """Read every intact record of the log file at *path*.

    Returns ``(records, valid_end, torn)`` where *records* is a list of
    ``(lsn, kind, txid, data, end_offset)`` tuples, *valid_end* is the byte
    offset of the last intact frame boundary, and *torn* is a
    :class:`TornTail` (or ``None``) describing a discarded tail.
    """
    records = []
    valid_end = 0
    torn = None
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except FileNotFoundError:
        return records, valid_end, torn
    offset = 0
    size = len(blob)
    while offset < size:
        if offset + FRAME.size > size:
            torn = TornTail(offset, "truncated frame header")
            break
        length, crc = FRAME.unpack_from(blob, offset)
        start = offset + FRAME.size
        end = start + length
        if end > size:
            torn = TornTail(offset, "truncated payload")
            break
        payload = blob[start:end]
        if zlib.crc32(payload) != crc:
            torn = TornTail(offset, "crc mismatch")
            break
        try:
            lsn, kind, txid, data = pickle.loads(payload)
        except Exception:  # reprolint: disable=broad-except -- torn-tail detection: any unpickling failure means a partial write, by design
            torn = TornTail(offset, "undecodable payload")
            break
        records.append((lsn, kind, txid, data, end))
        valid_end = end
        offset = end
    return records, valid_end, torn


class WriteAheadLog:
    """One append-only log file plus its durability policy and counters.

    The log object is created closed; :meth:`open` positions it for
    appending (truncating any torn tail recovery detected).  All appends are
    serialized by an internal lock; the *deciding* of when to fsync is
    :meth:`commit_point`, called by the database at every statement /
    transaction commit boundary.
    """

    def __init__(self, path, fsync=None, group_window_ms=None,
                 fsync_latency_ms=None):
        self.path = path
        self.fsync_mode = resolve_fsync_mode(fsync)
        self.group_window_s = resolve_group_window(group_window_ms)
        self.fsync_latency_s = resolve_fsync_latency(fsync_latency_ms)
        self._file = None
        self._lock = threading.Lock()
        self._local = threading.local()
        self._last_fsync = 0.0  # guarded-by: _lock
        self._unsynced = False  # guarded-by: _lock
        self.last_lsn = 0  # guarded-by: _lock
        # always-on counters (registry mirrors only touched when enabled);
        # replayed/torn_dropped are only written during single-threaded
        # recovery, so they stay outside the lock discipline
        self.records = 0  # guarded-by: _lock
        self.fsyncs = 0  # guarded-by: _lock
        self.replayed = 0
        self.torn_dropped = 0
        self.checkpoints = 0  # guarded-by: _lock
        self.records_since_checkpoint = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open(self, append_at=None, next_lsn=None):
        """Open the file for appending.

        :param append_at: byte offset to truncate to first (recovery passes
            the end of the last intact record to drop a torn tail).
        :param next_lsn: continue LSN numbering from here.
        """
        if next_lsn is not None:
            with self._lock:
                self.last_lsn = max(self.last_lsn, next_lsn - 1)
        mode = "r+b" if os.path.exists(self.path) else "w+b"
        self._file = open(self.path, mode)
        if append_at is not None:
            self._file.truncate(append_at)
        self._file.seek(0, os.SEEK_END)

    def close(self):
        if self._file is None:
            return
        self.flush()
        self._fsync()
        self._file.close()
        self._file = None

    @property
    def closed(self):
        return self._file is None

    # ------------------------------------------------------------------
    # logging control (per-thread pause for rollback/replay compensation)
    # ------------------------------------------------------------------
    @property
    def active(self):
        """False while this thread runs unlogged work (undo, replay)."""
        return self._file is not None and not getattr(
            self._local, "paused", False
        )

    def pause(self):
        """``with wal.pause():`` — suspend logging on this thread."""
        wal = self

        class _Paused:
            def __enter__(self):
                wal._local.paused = True
                return wal

            def __exit__(self, exc_type, exc, tb):
                wal._local.paused = False
                return False

        return _Paused()

    def set_txid(self, txid):
        """Bind the calling thread's ops to transaction *txid* (0 clears)."""
        self._local.txid = txid

    @property
    def current_txid(self):
        return getattr(self._local, "txid", 0)

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def append(self, kind, data=None, txid=None):
        """Frame and buffer one record; returns its LSN.

        The record reaches the OS at the next :meth:`flush` /
        :meth:`commit_point` and the disk platter per the fsync policy.
        """
        if txid is None:
            txid = self.current_txid
        with self._lock:
            self.last_lsn += 1
            lsn = self.last_lsn
            payload = pickle.dumps((lsn, kind, txid, data), protocol=5)
            self._file.write(FRAME.pack(len(payload), zlib.crc32(payload)))
            self._file.write(payload)
            self._unsynced = True
            self.records += 1
            self.records_since_checkpoint += 1
            if ENGINE_METRICS.enabled:
                _RECORDS.inc()
        return lsn

    def log_op(self, kind, table_name, rid, *images):
        """Convenience for table-level redo/undo records."""
        return self.append(kind, (table_name, rid) + images)

    def flush(self):
        """Push buffered frames to the OS (no fsync)."""
        with self._lock:
            if self._file is not None:
                self._file.flush()

    def commit_point(self):
        """A statement/transaction became durable-intent: flush, then fsync
        per the configured policy (see module docstring)."""
        with self._lock:
            if self._file is None:
                return
            self._file.flush()
            if not self._unsynced or self.fsync_mode == FSYNC_OFF:
                return
            if self.fsync_mode == FSYNC_ALWAYS:
                self._fsync_locked()
                return
            now = monotonic()
            if now - self._last_fsync >= self.group_window_s:
                self._fsync_locked()

    def sync(self):
        """Unconditional flush + fsync (close / checkpoint paths)."""
        with self._lock:
            if self._file is None:
                return
            self._file.flush()
            self._fsync_locked()

    def _fsync(self):
        with self._lock:
            self._fsync_locked()

    def _fsync_locked(self):  # holds: _lock
        if self._file is None:
            return
        os.fsync(self._file.fileno())
        if self.fsync_latency_s:
            # simulated log-device latency (see module docstring): the
            # sleep happens with the lock held because a real device
            # serializes flushes of one log file the same way
            sleep(self.fsync_latency_s)
        self._last_fsync = monotonic()
        self._unsynced = False
        self.fsyncs += 1
        if ENGINE_METRICS.enabled:
            _FSYNCS.inc()

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def reset(self, snapshot_lsn):
        """Truncate the log after a snapshot and stamp a CHECKPOINT record.

        The snapshot already persists everything up to *snapshot_lsn*; the
        fresh log starts with a checkpoint marker carrying that LSN so a
        recovery can cross-check the pair.
        """
        with self._lock:
            self._file.seek(0)
            self._file.truncate(0)
            self.checkpoints += 1
            self.records_since_checkpoint = 0
            if ENGINE_METRICS.enabled:
                _CHECKPOINTS.inc()
        self.append("checkpoint", {"snapshot_lsn": snapshot_lsn}, txid=0)
        self.sync()

    def note_replayed(self, count):
        self.replayed += count
        if ENGINE_METRICS.enabled:
            _REPLAYED.inc(count)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self):
        with self._lock:
            return {
                "records": self.records,
                "fsyncs": self.fsyncs,
                "replayed": self.replayed,
                "torn_dropped": self.torn_dropped,
                "checkpoints": self.checkpoints,
                "records_since_checkpoint": self.records_since_checkpoint,
                "fsync_mode": self.fsync_mode,
                "last_lsn": self.last_lsn,
            }
