"""Paged row storage behind an LRU buffer pool.

Tables keep their rows in fixed-capacity pages.  A page is either *resident*
(a Python list of row tuples held in the buffer pool) or *evicted* (a pickled
byte blob owned by the table).  Every row access goes through
:class:`BufferPool`, so shrinking the pool converts row accesses into real
deserialization work — this is how the paper's memory-size experiment
(Figure 8c) is reproduced without fake sleeps.

Deleted slots are stored as ``None``; live rows are always tuples, so the two
cannot be confused.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict

from repro.obs.metrics import ENGINE_METRICS

PAGE_CAPACITY = 256
"""Number of row slots per page."""

# Global mirrors of the per-pool counters (see docs/OBSERVABILITY.md).
# Per-pool ``hits``/``misses``/``evictions`` stay always-on (they are plain
# int adds and per-query stats snapshot them); the registry mirror is only
# touched when metrics are enabled.
_HITS = ENGINE_METRICS.counter("pages.hits")
_MISSES = ENGINE_METRICS.counter("pages.misses")
_EVICTIONS = ENGINE_METRICS.counter("pages.evictions")


class PageFrame:
    """A resident page: its rows plus a dirty flag."""

    __slots__ = ("rows", "dirty")

    def __init__(self, rows, dirty=False):
        self.rows = rows
        self.dirty = dirty


class BufferPool:
    """An LRU cache of resident pages shared by all tables of a database.

    :param capacity_pages: maximum number of resident pages, or ``None`` for
        an unbounded pool (everything stays in memory).
    """

    def __init__(self, capacity_pages=None):
        if capacity_pages is not None and capacity_pages < 1:
            raise ValueError("buffer pool needs capacity of at least one page")
        self.capacity_pages = capacity_pages
        self._frames: OrderedDict[tuple[str, int], PageFrame] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self):
        return len(self._frames)

    def resize(self, capacity_pages):
        """Change the pool capacity, evicting pages if it shrank."""
        self.capacity_pages = capacity_pages
        if capacity_pages is not None:
            while len(self._frames) > capacity_pages:
                self._evict_one()

    def reset_counters(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def fetch(self, table, page_no, for_write=False):
        """Return the row list of page *page_no* of *table*.

        The returned list is the live page content; callers that mutate it
        must pass ``for_write=True`` so the dirty flag is set.
        """
        key = (table.name, page_no)
        frame = self._frames.get(key)
        if frame is not None:
            self._frames.move_to_end(key)
            self.hits += 1
            if ENGINE_METRICS.enabled:
                _HITS.inc()
        else:
            self.misses += 1
            if ENGINE_METRICS.enabled:
                _MISSES.inc()
            blob = table.page_blob(page_no)
            rows = pickle.loads(blob) if blob is not None else []
            frame = PageFrame(rows)
            self._frames[key] = frame
            self._maybe_evict()
        if for_write:
            frame.dirty = True
        return frame.rows

    def add_page(self, table, page_no, rows):
        """Register a brand new (dirty) page created by an insert."""
        key = (table.name, page_no)
        self._frames[key] = PageFrame(rows, dirty=True)
        self._frames.move_to_end(key)
        self._maybe_evict()

    def flush_table(self, table):
        """Serialize and drop every resident page belonging to *table*."""
        keys = [key for key in self._frames if key[0] == table.name]
        for key in keys:
            self._write_back(key, self._frames.pop(key))

    def drop_table(self, table_name):
        """Discard resident pages of a dropped table without write-back."""
        keys = [key for key in self._frames if key[0] == table_name]
        for key in keys:
            del self._frames[key]

    def clear(self):
        """Evict (with write-back) every resident page.

        Used by benchmarks to start from a cold cache.
        """
        while self._frames:
            self._evict_one()

    def flush_all(self):
        """Write back every dirty page, keeping all pages resident.

        Checkpoints use this so the snapshot sees current page blobs
        without paying the re-deserialization cost :meth:`clear` would.
        """
        for key, frame in self._frames.items():
            if frame.dirty:
                self._write_back(key, frame)
                frame.dirty = False

    def _maybe_evict(self):
        if self.capacity_pages is None:
            return
        while len(self._frames) > self.capacity_pages:
            self._evict_one()

    def _evict_one(self):
        key, frame = self._frames.popitem(last=False)
        self.evictions += 1
        if ENGINE_METRICS.enabled:
            _EVICTIONS.inc()
        self._write_back(key, frame)

    def _write_back(self, key, frame):
        if not frame.dirty:
            return
        table_name, page_no = key
        table = self._table_resolver(table_name)
        if table is not None:
            table.store_page_blob(page_no, pickle.dumps(frame.rows, protocol=5))

    # The database installs a resolver so evicted dirty pages can be written
    # back to their owning table.  A standalone pool (unit tests) keeps pages
    # resident in the frame map instead.
    def _table_resolver(self, table_name):  # pragma: no cover - overridden
        return None

    def bind_catalog(self, resolver):
        """Install a ``table_name -> HeapTable`` resolver for write-back."""
        self._table_resolver = resolver
