"""Optimizer statistics: per-table row counts, NDV, MCVs and histograms.

``ANALYZE [table]`` walks each table once (bounded stride sample) and
records, per column and per indexed expression:

* an estimated **distinct-value count** (exact when the sample covers the
  table, scaled otherwise),
* the **null fraction**,
* the **most common values** with their frequencies (Postgres-style MCV
  list, so skewed columns — edge labels, type tags — get per-value
  equality selectivities instead of a uniform ``rows / ndv``),
* an **equi-depth histogram** (quantile boundaries over the sorted
  sample) answering range / prefix-LIKE selectivities.

Statistics are keyed by *expression fingerprint* (the planner's canonical
predicate string): plain columns under ``col(name)``, expression indexes
(``JSON_VAL(attr, 'key')``) under the index fingerprint, so attribute
predicates get real selectivities too.

Maintenance is incremental by construction: a :class:`ColumnStats`
answers *fractions*, and the planner multiplies them into the table's
**live** row count, so estimates track inserts/deletes after ANALYZE
without touching the histograms.  The insert/delete watermarks captured
at ANALYZE time expose how far a table has drifted (:meth:`TableStats.
mutation_drift`).  Statistics are invalidated by the schema epoch
(any DDL) and persisted through the WAL meta channel — they survive
checkpoints and crash recovery without a recovery-format change.

The ``REPRO_COSTED`` environment variable (default on; ``0`` disables)
selects whether the planner consults statistics at all.  With the knob
off the planner is the exact pre-statistics heuristic — the differential
oracle, mirroring ``REPRO_VECTORIZED``.
"""

from __future__ import annotations

import bisect
import os
import threading

from repro.relational.index import total_order_key

#: rows the ANALYZE sample aims for (stride sampling over the heap scan)
SAMPLE_TARGET = 4096

#: number of equi-depth histogram buckets (boundary count is +1)
HISTOGRAM_BUCKETS = 32

#: most-common-value slots kept per column
MCV_SLOTS = 8

#: meta key the registry persists under (see Database.put_meta)
META_STATS_KEY = "table_stats"

_ENABLED = os.environ.get("REPRO_COSTED", "1") != "0"


def costed_enabled():
    """Is the statistics-driven cost model on for newly planned statements?"""
    return _ENABLED


def set_costed(flag):
    """Force the planner mode (tests / benchmarks).  Returns the old value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


class heuristic_mode:
    """Context manager running the block with the cost model forced off."""

    def __enter__(self):
        self._previous = set_costed(False)
        return self

    def __exit__(self, exc_type, exc, tb):
        set_costed(self._previous)
        return False


def _is_composite(fingerprint):
    """True for multi-expression index fingerprints.

    Composite indexes join their member fingerprints with top-level
    commas (``col(a),col(b)``); commas *inside* parentheses belong to a
    single expression (``json_val(col(attr),'key')``) and don't count.
    """
    depth = 0
    for char in fingerprint:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif char == "," and depth == 0:
            return True
    return False


def _hashable(value):
    """A dict key for *value* (lists and other unhashables via repr)."""
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value


class ColumnStats:
    """Distribution summary of one column (or indexed expression).

    All selectivity answers are fractions of the table's rows; the caller
    multiplies them into the current live row count, which is what makes
    the estimates track post-ANALYZE inserts and deletes.
    """

    __slots__ = (
        "ndv", "null_frac", "mcvs", "bounds", "sample_size",
        "_mcv_map", "_bound_keys",
    )

    def __init__(self, ndv, null_frac, mcvs, bounds, sample_size):
        self.ndv = ndv
        self.null_frac = null_frac
        self.mcvs = mcvs  # list of (value, fraction), most common first
        self.bounds = bounds  # equi-depth histogram boundaries (sorted)
        self.sample_size = sample_size
        self._mcv_map = {_hashable(value): frac for value, frac in mcvs}
        self._bound_keys = [total_order_key(b) for b in bounds]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, values, row_count):
        """Summarize *values* (one sampled value per row, may hold None)."""
        sample_size = len(values)
        if sample_size == 0:
            return cls(1, 0.0, [], [], 0)
        non_null = [value for value in values if value is not None]
        null_frac = 1.0 - len(non_null) / sample_size

        counts = {}
        originals = {}
        for value in non_null:
            key = _hashable(value)
            counts[key] = counts.get(key, 0) + 1
            if key not in originals:
                originals[key] = value
        distinct = len(counts)
        if sample_size >= row_count:
            ndv = distinct
        elif distinct < sample_size / 2:
            # most values repeat inside the sample: the value set is
            # probably small and (nearly) fully observed
            ndv = distinct
        else:
            ndv = min(row_count, int(distinct * row_count / sample_size))
        ndv = max(ndv, 1)

        ranked = sorted(
            counts.items(),
            key=lambda item: (-item[1], repr(item[0])),
        )
        mcvs = [
            (originals[key], count / sample_size)
            for key, count in ranked[:MCV_SLOTS]
            if count > 1 or distinct <= MCV_SLOTS
        ]

        bounds = []
        if non_null:
            ordered = sorted(non_null, key=total_order_key)
            top = len(ordered) - 1
            bounds = [
                ordered[(i * top) // HISTOGRAM_BUCKETS]
                for i in range(HISTOGRAM_BUCKETS + 1)
            ]
        return cls(ndv, null_frac, mcvs, bounds, sample_size)

    # ------------------------------------------------------------------
    # selectivities (fractions of table rows)
    # ------------------------------------------------------------------
    def eq_selectivity(self, value):
        if value is None:
            return 0.0  # `= NULL` never matches
        frac = self._mcv_map.get(_hashable(value))
        if frac is not None:
            return frac
        rest = max(0.0, 1.0 - self.null_frac - sum(self._mcv_map.values()))
        rest_ndv = max(self.ndv - len(self._mcv_map), 1)
        return rest / rest_ndv

    def ne_selectivity(self, value):
        return max(0.0, 1.0 - self.null_frac - self.eq_selectivity(value))

    def in_list_selectivity(self, values):
        total = sum(self.eq_selectivity(value) for value in values)
        return min(total, 1.0)

    def _frac_below(self, value, include_equal):
        """Fraction of non-null values below (or equal to) *value*."""
        if not self._bound_keys:
            return 0.0
        key = total_order_key(value)
        if include_equal:
            i = bisect.bisect_right(self._bound_keys, key)
        else:
            i = bisect.bisect_left(self._bound_keys, key)
        buckets = len(self._bound_keys) - 1
        if buckets <= 0:
            return 1.0 if i > 0 else 0.0
        return min(1.0, max(0.0, (i - 1) / buckets))

    def range_selectivity(self, low, high, low_inclusive=True,
                          high_inclusive=True):
        """Fraction of rows with *low* .. *high* (either bound optional)."""
        if not self.bounds:
            return 0.0
        f_high = (
            1.0 if high is None
            else self._frac_below(high, include_equal=high_inclusive)
        )
        f_low = (
            0.0 if low is None
            else self._frac_below(low, include_equal=not low_inclusive)
        )
        span = max(0.0, f_high - f_low)
        return span * (1.0 - self.null_frac)

    def like_prefix_selectivity(self, prefix):
        """Fraction of rows whose value starts with *prefix*."""
        return self.range_selectivity(prefix, prefix + "￿")

    def not_null_selectivity(self):
        return 1.0 - self.null_frac

    def null_selectivity(self):
        return self.null_frac

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self):
        return {
            "ndv": self.ndv,
            "null_frac": self.null_frac,
            "mcvs": list(self.mcvs),
            "bounds": list(self.bounds),
            "sample_size": self.sample_size,
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(
            payload["ndv"], payload["null_frac"],
            [tuple(pair) for pair in payload["mcvs"]],
            list(payload["bounds"]), payload["sample_size"],
        )


class TableStats:
    """One table's ANALYZE result, keyed by expression fingerprint."""

    __slots__ = (
        "table_name", "row_count", "page_count", "sample_size",
        "insert_watermark", "delete_watermark", "schema_epoch", "columns",
    )

    def __init__(self, table_name, row_count, page_count, sample_size,
                 insert_watermark, delete_watermark, schema_epoch, columns):
        self.table_name = table_name
        self.row_count = row_count
        self.page_count = page_count
        self.sample_size = sample_size
        self.insert_watermark = insert_watermark
        self.delete_watermark = delete_watermark
        self.schema_epoch = schema_epoch
        self.columns = columns  # fingerprint -> ColumnStats

    @classmethod
    def collect(cls, table, schema_epoch):
        """One-pass stride sample of *table* → per-fingerprint summaries."""
        row_count = table.live_rows
        stride = max(1, row_count // SAMPLE_TARGET)
        sample = []
        for position, row in enumerate(table.scan_rows()):
            if position % stride == 0:
                sample.append(row)

        # plain columns under the planner's qualifier-free fingerprint
        targets = [
            (f"col({name})", position, None)
            for position, name in enumerate(table.schema.column_names)
        ]
        covered = {fingerprint for fingerprint, __, __fn in targets}
        # expression indexes (JSON_VAL attribute lookups): evaluate the
        # index key function over the sample; composite fingerprints never
        # match a single predicate, so they are skipped
        for index in table.indexes.values():
            fingerprint = index.fingerprint
            if fingerprint in covered or _is_composite(fingerprint):
                continue
            covered.add(fingerprint)
            targets.append((fingerprint, None, index.key_function))

        columns = {}
        for fingerprint, position, key_fn in targets:
            if key_fn is None:
                values = [row[position] for row in sample]
            else:
                values = []
                for row in sample:
                    try:
                        values.append(key_fn(row))
                    except Exception:  # reprolint: disable=broad-except -- arbitrary index expressions may reject sampled rows; skip the value, keep analyzing
                        values.append(None)
            columns[fingerprint] = ColumnStats.build(values, row_count)
        return cls(
            table.name, row_count, table.page_count, len(sample),
            getattr(table, "insert_count", 0),
            getattr(table, "delete_count", 0),
            schema_epoch, columns,
        )

    def column(self, fingerprint):
        """The :class:`ColumnStats` for *fingerprint*, or ``None``."""
        if fingerprint is None:
            return None
        return self.columns.get(fingerprint)

    def ndv_map(self):
        """``{fingerprint: distinct values}`` for the plan cost interface."""
        return {
            fingerprint: stats.ndv
            for fingerprint, stats in self.columns.items()
        }

    def mutation_drift(self, table):
        """Fraction of the analyzed row count mutated since ANALYZE."""
        inserted = getattr(table, "insert_count", 0) - self.insert_watermark
        deleted = getattr(table, "delete_count", 0) - self.delete_watermark
        return (max(inserted, 0) + max(deleted, 0)) / max(self.row_count, 1)

    def to_dict(self):
        return {
            "table_name": self.table_name,
            "row_count": self.row_count,
            "page_count": self.page_count,
            "sample_size": self.sample_size,
            "insert_watermark": self.insert_watermark,
            "delete_watermark": self.delete_watermark,
            "schema_epoch": self.schema_epoch,
            "columns": {
                fingerprint: stats.to_dict()
                for fingerprint, stats in self.columns.items()
            },
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(
            payload["table_name"], payload["row_count"],
            payload["page_count"], payload["sample_size"],
            payload["insert_watermark"], payload["delete_watermark"],
            payload["schema_epoch"],
            {
                fingerprint: ColumnStats.from_dict(column)
                for fingerprint, column in payload["columns"].items()
            },
        )


class StatisticsRegistry:
    """All ANALYZE results of one database.

    Planner threads read entries while writer threads run ANALYZE or DDL,
    so the table map is guarded; :class:`TableStats` entries themselves
    are immutable after construction and safe to read lock-free once
    fetched.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._tables = {}  # guarded-by: _lock

    def analyze(self, table, schema_epoch):
        """Collect fresh statistics for *table* and install them."""
        entry = TableStats.collect(table, schema_epoch)
        with self._lock:
            self._tables[table.name] = entry
        return entry

    def get(self, table_name, schema_epoch=None):
        """The current :class:`TableStats`, or ``None`` when missing or
        invalidated by a schema change since ANALYZE."""
        with self._lock:
            entry = self._tables.get(table_name)
        if entry is None:
            return None
        if schema_epoch is not None and entry.schema_epoch != schema_epoch:
            return None
        return entry

    def forget(self, table_name):
        """Drop statistics for a table (DROP TABLE)."""
        with self._lock:
            self._tables.pop(table_name, None)

    def clear(self):
        with self._lock:
            self._tables.clear()

    def analyzed_tables(self):
        with self._lock:
            return sorted(self._tables)

    def snapshot(self):
        """JSON-able per-table summary for :stats / server introspection."""
        with self._lock:
            entries = list(self._tables.values())
        return {
            entry.table_name: {
                "row_count": entry.row_count,
                "sample_size": entry.sample_size,
                "columns": len(entry.columns),
                "schema_epoch": entry.schema_epoch,
            }
            for entry in entries
        }

    # ------------------------------------------------------------------
    # persistence (WAL meta channel)
    # ------------------------------------------------------------------
    def to_meta(self):
        """Serializable payload for ``Database.put_meta``."""
        with self._lock:
            entries = list(self._tables.values())
        return {entry.table_name: entry.to_dict() for entry in entries}

    def load_meta(self, database, payload):
        """Install persisted statistics, validated against the catalog.

        Recovery replays DDL and bumps the schema epoch along the way, so
        entries are restamped with the *current* epoch after structural
        validation: the table must still exist and each plain-column
        fingerprint must still name a live column (expression fingerprints
        must still have a matching index).  Anything stale is dropped.
        """
        loaded = {}
        for table_name, table_payload in (payload or {}).items():
            if not database.catalog.has_table(table_name):
                continue
            table = database.catalog.get_table(table_name)
            try:
                entry = TableStats.from_dict(table_payload)
            except (KeyError, TypeError):
                continue
            valid_fingerprints = {
                f"col({name})" for name in table.schema.column_names
            } | {index.fingerprint for index in table.indexes.values()}
            entry.columns = {
                fingerprint: stats
                for fingerprint, stats in entry.columns.items()
                if fingerprint in valid_fingerprints
            }
            entry.schema_epoch = database.schema_epoch
            loaded[table_name] = entry
        with self._lock:
            self._tables.update(loaded)
        return sorted(loaded)
