"""Physical plan operators for the SQL subset SQLGraph's translator emits.

The operator set mirrors what the paper's Table 8 query templates need at
execution time: index/sequential scans over the adjacency tables (OPA/IPA
with OSA/ISA spill, paper §3.2) and attribute tables (VA/EA, §3.3), UNNEST
for exploding adjacency column triads, hash and index-nested-loop joins
for adjacency hops, plus the projection / filter / distinct / sort /
aggregate / set operators the Gremlin pipes compile into (§4).

Each operator exposes:

* ``columns`` — output schema as a list of ``(qualifier, name)`` pairs,
* ``est_rows`` — the planner's cardinality estimate,
* ``rows()`` — an iterator of output tuples (the row-compatibility shim),
* ``batches()`` — an iterator of :class:`~repro.relational.batch.
  ColumnBatch` blocks (the vectorized path; see ``docs/EXECUTION.md``),
* ``children_ops()`` / ``describe()`` — plan-tree introspection, used by
  EXPLAIN and by ``repro.obs.stats.instrument_plan`` for EXPLAIN ANALYZE.

Batch-native operators (``batch_native = True``) implement
``batches_impl()`` and keep their pre-vectorization row loop verbatim in
``rows_impl()``; the base class routes ``rows()``/``batches()`` through
whichever implementation the ``REPRO_VECTORIZED`` knob selects, inserting
the row↔batch shims at the boundary.  Row-native operators (sort, set
ops, generic nested-loop join) only implement ``rows_impl()`` and get
batches through the shim.  Either way both access styles always work, so
consumers never care which side of the migration an operator is on.

Streaming operators (scan, filter, project, unnest, union-all, limit) are
generators; blocking operators (hash join build side, sort, distinct,
aggregate, set ops) materialize what they must.  Instrumentation shadows
the operator's *native* method (``batches`` when vectorized,
``rows`` otherwise) with an instance attribute on the plan being
analyzed, so the uninstrumented path pays nothing and nothing is counted
twice.
"""

from __future__ import annotations

from repro.relational import batch as batch_mod
from repro.relational.batch import (
    BatchRow,
    ColumnBatch,
    MaterializedRelation,
    batches_from_rows,
)
from repro.relational.errors import BindError
from repro.relational.index import total_order_key


def make_resolver(columns):
    """Build a ``(qualifier, name) -> position`` resolver over *columns*.

    Qualified lookups must match exactly; unqualified lookups must be
    unambiguous across the schema.
    """
    qualified = {}
    unqualified = {}
    for position, (qualifier, name) in enumerate(columns):
        if qualifier is not None:
            qualified[(qualifier, name)] = position
        unqualified.setdefault(name, []).append(position)

    def resolver(qualifier, name):
        if qualifier is not None:
            key = (qualifier, name)
            if key in qualified:
                return qualified[key]
            raise BindError(f"unknown column {qualifier}.{name}")
        positions = unqualified.get(name)
        if not positions:
            raise BindError(f"unknown column {name}")
        if len(positions) > 1:
            raise BindError(f"ambiguous column {name}")
        return positions[0]

    return resolver


def make_hashable(value):
    """Convert a value to a hashable form for set/group operations."""
    if isinstance(value, (list, tuple)):
        return tuple(make_hashable(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, make_hashable(val)) for key, val in value.items()))
    if isinstance(value, set):
        return frozenset(make_hashable(item) for item in value)
    return value


def hashable_row(row):
    return tuple(make_hashable(value) for value in row)


def _eval_row_fns(columns, positions, fns):
    """Evaluate row closures over batch *positions* via a reused
    :class:`BatchRow` view; returns one value list per closure.  This is
    the fallback batch kernel for operators constructed without
    planner-supplied vectorized callables (tests build operators by hand
    with plain row lambdas)."""
    row = BatchRow(columns)
    lists = [[] for __ in fns]
    for i in positions:
        row.i = i
        for out, fn in zip(lists, fns):
            out.append(fn(row))
    return lists


def _rid_batches(table, rids, width, batch_size=None):
    """Fetch *rids* in chunks via ``table.get_many`` and yield the live
    rows as dense blocks.  Index scans and probes go through this so the
    buffer pool is touched once per page per chunk, not once per RID."""
    if batch_size is None:
        batch_size = batch_mod.BATCH_SIZE
    chunk = []
    for rid in rids:
        chunk.append(rid)
        if len(chunk) >= batch_size:
            live = [row for row in table.get_many(chunk) if row is not None]
            if live:
                yield ColumnBatch.from_rows(live, width)
            chunk = []
    if chunk:
        live = [row for row in table.get_many(chunk) if row is not None]
        if live:
            yield ColumnBatch.from_rows(live, width)


def _filter_block(block, predicate_batch, predicate):
    """Narrow *block* to the positions satisfying the predicate.

    Prefers the vectorized *predicate_batch* kernel; otherwise drives the
    row closure through a :class:`BatchRow`.  Returns the input block
    unchanged when nothing is filtered (zero-copy), ``None`` when nothing
    survives, or a new block sharing the column lists with a narrowed
    selection vector.
    """
    positions = block.positions()
    if predicate_batch is not None:
        values = predicate_batch(block.columns, positions)
        sel = [i for i, value in zip(positions, values) if value]
    else:
        row = BatchRow(block.columns)
        sel = []
        append = sel.append
        for i in positions:
            row.i = i
            if predicate(row):
                append(i)
    if len(sel) == block.selected_count():
        return block
    if not sel:
        return None
    return ColumnBatch(block.columns, block.length, sel)


class Operator:
    """Base of all physical operators.

    Batch contract: ``batches()`` yields :class:`ColumnBatch` blocks whose
    selection vectors must be honored by consumers; ``rows()`` yields the
    same rows as tuples, in the same order.  The two views are always
    consistent — each subclass implements one natively and inherits the
    shim for the other.
    """

    columns = ()
    est_rows = 0
    #: True when the class implements ``batches_impl`` natively; the
    #: ``REPRO_VECTORIZED`` knob then selects which implementation runs.
    batch_native = False

    def uses_batches(self):
        """Is the vectorized implementation the native path right now?"""
        return self.batch_native and batch_mod.enabled()

    def rows(self):
        """Yield output rows as tuples (row-compatibility shim)."""
        if self.uses_batches():
            # route through self.batches so EXPLAIN ANALYZE's instance-
            # attribute instrumentation sees the traffic exactly once
            for block in self.batches():
                yield from block.iter_rows()
        else:
            yield from self.rows_impl()

    def batches(self):
        """Yield output :class:`ColumnBatch` blocks."""
        if self.uses_batches():
            yield from self.batches_impl()
        else:
            yield from batches_from_rows(self.rows(), len(self.columns))

    def rows_impl(self):
        """Row-at-a-time implementation (the pre-vectorization loop)."""
        raise NotImplementedError

    def batches_impl(self):
        """Batch-at-a-time implementation (batch-native operators only)."""
        raise NotImplementedError

    def children_ops(self):
        """Child operators, for plan inspection / EXPLAIN."""
        kids = []
        for attr in ("child", "left", "right", "outer"):
            value = getattr(self, attr, None)
            if isinstance(value, Operator):
                kids.append(value)
        for value in getattr(self, "children", ()) or ():
            if isinstance(value, Operator):
                kids.append(value)
        return kids

    def describe(self):
        """One-line summary used by EXPLAIN."""
        return type(self).__name__

    # ------------------------------------------------------------------
    # cost interface (consumed by the statistics-driven planner)
    # ------------------------------------------------------------------
    #: ANALYZE-derived ``{fingerprint: ndv}`` the planner attaches to base
    #: accesses; ``distinct_values`` consults it before asking children
    stats_ndv = None

    def records_output(self):
        """Estimated output row count (the planner's ``est_rows``)."""
        return self.est_rows

    def blocks_accessed(self):
        """Estimated page fetches to produce the full output once."""
        return sum(child.blocks_accessed() for child in self.children_ops())

    def distinct_values(self, fingerprint):
        """Estimated distinct values of the expression *fingerprint* in the
        output, or ``None`` when unknown.

        Pipeline operators pass the question through to whichever child
        carries the column, capped by their own output cardinality — a
        filter can only shrink the value set.
        """
        local = self.stats_ndv
        if local is not None and fingerprint in local:
            return min(local[fingerprint], max(self.records_output(), 1))
        answers = [
            child.distinct_values(fingerprint)
            for child in self.children_ops()
        ]
        answers = [answer for answer in answers if answer is not None]
        if not answers:
            return None
        return min(min(answers), max(self.records_output(), 1))


def explain_plan(plan, indent=0):
    """Render an operator tree as an indented text plan."""
    lines = [f"{'  ' * indent}{plan.describe()}  (est_rows={plan.est_rows})"]
    for child in plan.children_ops():
        lines.extend(explain_plan(child, indent + 1).splitlines())
    return "\n".join(lines)


class SeqScan(Operator):
    """Full scan of a heap table, optionally with a pushed-down predicate.

    Batch contract: emits the table's pages as dense blocks via
    :meth:`HeapTable.scan_batches`; a pushed predicate narrows each block
    to a selection vector in place (column lists are never copied).
    """

    batch_native = True

    def __init__(self, table, qualifier, predicate=None, est_rows=None,
                 predicate_batch=None):
        self.table = table
        self.qualifier = qualifier
        self.predicate = predicate
        self.predicate_batch = predicate_batch
        self.columns = [(qualifier, name) for name in table.schema.column_names]
        self.est_rows = est_rows if est_rows is not None else table.live_rows

    def describe(self):
        suffix = " filtered" if self.predicate is not None else ""
        return f"SeqScan({self.table.name} as {self.qualifier}){suffix}"

    def blocks_accessed(self):
        return self.table.page_count

    def rows_impl(self):
        predicate = self.predicate
        if predicate is None:
            yield from self.table.scan_rows()
            return
        for row in self.table.scan_rows():
            if predicate(row):
                yield row

    def batches_impl(self):
        predicate = self.predicate
        if predicate is None:
            yield from self.table.scan_batches()
            return
        predicate_batch = self.predicate_batch
        for block in self.table.scan_batches():
            filtered = _filter_block(block, predicate_batch, predicate)
            if filtered is not None:
                yield filtered


class IndexEqScan(Operator):
    """Equality lookup through a hash or sorted index with constant keys.

    Batch contract: fetched rows are packed into dense blocks in probe
    order; a residual predicate narrows each block's selection vector.
    """

    batch_native = True

    def __init__(self, table, qualifier, index, keys, predicate=None, est_rows=1,
                 predicate_batch=None):
        self.table = table
        self.qualifier = qualifier
        self.index = index
        self.keys = keys  # list of constant keys to probe
        self.predicate = predicate
        self.predicate_batch = predicate_batch
        self.columns = [(qualifier, name) for name in table.schema.column_names]
        self.est_rows = est_rows

    def describe(self):
        return (
            f"IndexEqScan({self.table.name} as {self.qualifier} "
            f"via {self.index.name})"
        )

    def blocks_accessed(self):
        # each probed row may land on its own page (worst case)
        return max(self.est_rows, 1)

    def _fetch(self):
        table = self.table
        for key in self.keys:
            for rid in self.index.lookup(key):
                row = table.get(rid)
                if row is not None:
                    yield row

    def rows_impl(self):
        predicate = self.predicate
        for row in self._fetch():
            if predicate is None or predicate(row):
                yield row

    def batches_impl(self):
        predicate = self.predicate
        predicate_batch = self.predicate_batch
        rids = (
            rid for key in self.keys for rid in self.index.lookup(key)
        )
        for block in _rid_batches(self.table, rids, len(self.columns)):
            if predicate is None:
                yield block
                continue
            filtered = _filter_block(block, predicate_batch, predicate)
            if filtered is not None:
                yield filtered


class IndexRangeScan(Operator):
    """Range scan through a sorted index.

    Batch contract: same as :class:`IndexEqScan` — dense blocks in index
    order, residual predicate applied per block.
    """

    batch_native = True

    def __init__(self, table, qualifier, index, low, high, low_inclusive,
                 high_inclusive, predicate=None, est_rows=1,
                 predicate_batch=None):
        self.table = table
        self.qualifier = qualifier
        self.index = index
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.predicate = predicate
        self.predicate_batch = predicate_batch
        self.columns = [(qualifier, name) for name in table.schema.column_names]
        self.est_rows = est_rows

    def describe(self):
        return (
            f"IndexRangeScan({self.table.name} as {self.qualifier} "
            f"via {self.index.name})"
        )

    def blocks_accessed(self):
        return max(self.est_rows, 1)

    def _fetch(self):
        table = self.table
        for rid in self.index.range_scan(
            self.low, self.high, self.low_inclusive, self.high_inclusive
        ):
            row = table.get(rid)
            if row is not None:
                yield row

    def rows_impl(self):
        predicate = self.predicate
        for row in self._fetch():
            if predicate is None or predicate(row):
                yield row

    def batches_impl(self):
        predicate = self.predicate
        predicate_batch = self.predicate_batch
        rids = self.index.range_scan(
            self.low, self.high, self.low_inclusive, self.high_inclusive
        )
        for block in _rid_batches(self.table, rids, len(self.columns)):
            if predicate is None:
                yield block
                continue
            filtered = _filter_block(block, predicate_batch, predicate)
            if filtered is not None:
                yield filtered


class MaterializedScan(Operator):
    """Scan over a materialized result (CTE bodies, VALUES, subqueries).

    *source* is either a plain list of row tuples or a
    :class:`MaterializedRelation` (which a vectorized CTE materialization
    stores as dense column batches, so re-scanning it never transposes).

    Batch contract: emits the stored blocks as-is (zero-copy for a
    columnar source); a predicate narrows selection vectors per block.
    """

    batch_native = True

    def __init__(self, source, columns, predicate=None, predicate_batch=None):
        self.source = source
        self.columns = list(columns)
        self.predicate = predicate
        self.predicate_batch = predicate_batch
        if isinstance(source, MaterializedRelation):
            self.est_rows = source.row_count()
        else:
            self.est_rows = len(source)

    def describe(self):
        return f"MaterializedScan({self.est_rows} rows)"

    def blocks_accessed(self):
        return 0  # already resident in memory

    def _source_rows(self):
        if isinstance(self.source, MaterializedRelation):
            return self.source.iter_rows()
        return iter(self.source)

    def rows_impl(self):
        if self.predicate is None:
            return self._source_rows()
        predicate = self.predicate
        return (row for row in self._source_rows() if predicate(row))

    def batches_impl(self):
        if isinstance(self.source, MaterializedRelation):
            blocks = self.source.iter_batches()
        else:
            blocks = batches_from_rows(iter(self.source), len(self.columns))
        predicate = self.predicate
        if predicate is None:
            yield from blocks
            return
        predicate_batch = self.predicate_batch
        for block in blocks:
            filtered = _filter_block(block, predicate_batch, predicate)
            if filtered is not None:
                yield filtered


class FilterOp(Operator):
    """Apply a predicate, keeping rows where it evaluates true.

    Batch contract: consumes child blocks and narrows each block's
    selection vector — column lists pass through untouched (zero-copy).
    The vectorized ``predicate_batch`` kernel evaluates the predicate for
    a whole block at once; without one, the row closure runs per position.
    """

    batch_native = True

    def __init__(self, child, predicate, est_rows=None, predicate_batch=None):
        self.child = child
        self.predicate = predicate
        self.predicate_batch = predicate_batch
        self.columns = child.columns
        self.est_rows = est_rows if est_rows is not None else max(
            1, child.est_rows // 3
        )

    def rows_impl(self):
        predicate = self.predicate
        for row in self.child.rows():
            if predicate(row):
                yield row

    def batches_impl(self):
        predicate = self.predicate
        predicate_batch = self.predicate_batch
        for block in self.child.batches():
            filtered = _filter_block(block, predicate_batch, predicate)
            if filtered is not None:
                yield filtered


class ProjectOp(Operator):
    """Compute the SELECT list.

    Batch contract: consumes child blocks and emits dense blocks of
    evaluated expressions; with vectorized ``batch_fns`` each output
    column is produced by one kernel call per block (a bare column
    reference aliases the input column list — zero-copy), otherwise the
    row closures run per position.
    """

    batch_native = True

    def __init__(self, child, value_fns, columns, batch_fns=None):
        self.child = child
        self.value_fns = value_fns
        self.batch_fns = batch_fns
        self.columns = list(columns)
        self.est_rows = child.est_rows

    def rows_impl(self):
        fns = self.value_fns
        for row in self.child.rows():
            yield tuple(fn(row) for fn in fns)

    def batches_impl(self):
        batch_fns = self.batch_fns
        for block in self.child.batches():
            positions = block.positions()
            count = len(positions)
            if count == 0:
                continue
            if batch_fns is not None:
                out_columns = [fn(block.columns, positions) for fn in batch_fns]
            else:
                out_columns = _eval_row_fns(
                    block.columns, positions, self.value_fns
                )
            yield ColumnBatch(out_columns, count)


class HashJoinOp(Operator):
    """Equi hash join; builds on the right child.

    ``kind`` is ``'inner'`` or ``'left'`` (left outer: unmatched left rows are
    padded with NULLs).  ``residual`` is an optional extra predicate over the
    combined row.

    Batch contract: build and probe both consume child blocks; join keys
    come from vectorized kernels (``*_key_batch_fns``) or the
    :class:`BatchRow` fallback.  Output blocks gather probe-side columns
    by position and transpose the matching build rows.  A residual is a
    combined-row closure, so that case keeps the row loop and re-batches
    its output.
    """

    batch_native = True

    def __init__(self, left, right, left_key_fns, right_key_fns, kind="inner",
                 residual=None, est_rows=None, left_key_batch_fns=None,
                 right_key_batch_fns=None):
        self.left = left
        self.right = right
        self.left_key_fns = left_key_fns
        self.right_key_fns = right_key_fns
        self.left_key_batch_fns = left_key_batch_fns
        self.right_key_batch_fns = right_key_batch_fns
        self.kind = kind
        self.residual = residual
        self.columns = list(left.columns) + list(right.columns)
        if est_rows is None:
            est_rows = max(left.est_rows, right.est_rows)
        self.est_rows = est_rows

    def describe(self):
        return f"HashJoin[{self.kind}]"

    def rows_impl(self):
        build = {}
        right_keys = self.right_key_fns
        for row in self.right.rows():
            key = tuple(make_hashable(fn(row)) for fn in right_keys)
            if any(part is None for part in key):
                continue  # NULL never joins
            build.setdefault(key, []).append(row)
        left_keys = self.left_key_fns
        residual = self.residual
        pad = (None,) * len(self.right.columns)
        left_outer = self.kind == "left"
        for left_row in self.left.rows():
            key = tuple(make_hashable(fn(left_row)) for fn in left_keys)
            matches = build.get(key) if not any(part is None for part in key) else None
            matched = False
            if matches:
                for right_row in matches:
                    combined = left_row + right_row
                    if residual is None or residual(combined):
                        matched = True
                        yield combined
            if left_outer and not matched:
                yield left_row + pad

    def _key_lists(self, block, positions, batch_fns, row_fns):
        if batch_fns is not None:
            return [fn(block.columns, positions) for fn in batch_fns]
        return _eval_row_fns(block.columns, positions, row_fns)

    def batches_impl(self):
        if self.residual is not None:
            # residuals are combined-row closures; keep the row loop and
            # re-batch its output
            yield from batches_from_rows(self.rows_impl(), len(self.columns))
            return
        # build side: key each right row, normalizing via make_hashable
        # only when the raw key is unhashable (same trick as DistinctOp)
        build = {}
        for block in self.right.batches():
            positions = block.positions()
            if len(positions) == 0:
                continue
            key_lists = self._key_lists(
                block, positions, self.right_key_batch_fns,
                self.right_key_fns,
            )
            rows_iter = block.iter_rows()
            if len(key_lists) == 1:
                for key, row in zip(key_lists[0], rows_iter):
                    if key is None:
                        continue  # NULL never joins
                    try:
                        bucket = build.get(key)
                    except TypeError:
                        key = make_hashable(key)
                        bucket = build.get(key)
                    if bucket is None:
                        build[key] = [row]
                    else:
                        bucket.append(row)
            else:
                for key, row in zip(zip(*key_lists), rows_iter):
                    if any(part is None for part in key):
                        continue
                    try:
                        bucket = build.get(key)
                    except TypeError:
                        key = tuple(make_hashable(part) for part in key)
                        bucket = build.get(key)
                    if bucket is None:
                        build[key] = [row]
                    else:
                        bucket.append(row)
        pad = (None,) * len(self.right.columns)
        left_outer = self.kind == "left"
        lookup = build.get
        for block in self.left.batches():
            positions = block.positions()
            if len(positions) == 0:
                continue
            key_lists = self._key_lists(
                block, positions, self.left_key_batch_fns,
                self.left_key_fns,
            )
            single = len(key_lists) == 1
            probe_keys = (
                key_lists[0] if single else zip(*key_lists)
            )
            out_positions = []  # left position per output row
            append_pos = out_positions.append
            right_rows = []
            append_row = right_rows.append
            for i, key in zip(positions, probe_keys):
                if single:
                    null_key = key is None
                else:
                    null_key = any(part is None for part in key)
                matches = None
                if not null_key:
                    try:
                        matches = lookup(key)
                    except TypeError:
                        if single:
                            matches = lookup(make_hashable(key))
                        else:
                            matches = lookup(
                                tuple(make_hashable(part) for part in key)
                            )
                if matches:
                    for right_row in matches:
                        append_pos(i)
                        append_row(right_row)
                elif left_outer:
                    append_pos(i)
                    append_row(pad)
            if not right_rows:
                continue
            left_columns = [
                [column[i] for i in out_positions]
                for column in block.columns
            ]
            right_columns = [list(col) for col in zip(*right_rows)]
            yield ColumnBatch(
                left_columns + right_columns, len(right_rows)
            )


class NestedLoopJoinOp(Operator):
    """Fallback join for non-equi conditions; right side is materialized.

    Batch contract: row-native — the arbitrary join condition is a row
    closure; batches come from the base-class shim.
    """

    def __init__(self, left, right, condition=None, kind="inner", est_rows=None):
        self.left = left
        self.right = right
        self.condition = condition
        self.kind = kind
        self.columns = list(left.columns) + list(right.columns)
        if est_rows is None:
            est_rows = max(1, left.est_rows * max(right.est_rows, 1))
        self.est_rows = est_rows

    def rows_impl(self):
        right_rows = list(self.right.rows())
        condition = self.condition
        pad = (None,) * len(self.right.columns)
        left_outer = self.kind == "left"
        for left_row in self.left.rows():
            matched = False
            for right_row in right_rows:
                combined = left_row + right_row
                if condition is None or condition(combined):
                    matched = True
                    yield combined
            if left_outer and not matched:
                yield left_row + pad


class IndexNLJoinOp(Operator):
    """Index nested-loop join: probe an index of the inner base table with a
    key computed from each outer row.

    Batch contract: consumes outer blocks, computes probe keys per block
    (vectorized via ``outer_key_batch_fns`` when the planner supplies
    them), probes the index per key, and emits one block per input block
    — outer columns gathered by position, inner rows transposed.  A
    residual predicate forces the row implementation through the shim
    (residuals are row-shaped combined-tuple closures).
    """

    batch_native = True

    def __init__(self, outer, table, qualifier, index, outer_key_fns,
                 residual=None, kind="inner", est_rows=None,
                 outer_key_batch_fns=None):
        self.outer = outer
        self.table = table
        self.qualifier = qualifier
        self.index = index
        self.outer_key_fns = outer_key_fns
        self.outer_key_batch_fns = outer_key_batch_fns
        self.residual = residual
        self.kind = kind
        inner_columns = [(qualifier, name) for name in table.schema.column_names]
        self.columns = list(outer.columns) + inner_columns
        self._inner_width = len(inner_columns)
        self.est_rows = est_rows if est_rows is not None else outer.est_rows

    def describe(self):
        return (
            f"IndexNLJoin[{self.kind}]({self.table.name} as {self.qualifier} "
            f"via {self.index.name})"
        )

    def blocks_accessed(self):
        # drive the outer once, then roughly one probe page per outer row
        return self.outer.blocks_accessed() + max(self.outer.records_output(), 1)

    def rows_impl(self):
        table = self.table
        index = self.index
        key_fns = self.outer_key_fns
        residual = self.residual
        pad = (None,) * self._inner_width
        left_outer = self.kind == "left"
        single = len(key_fns) == 1
        for outer_row in self.outer.rows():
            if single:
                key = key_fns[0](outer_row)
                null_key = key is None
            else:
                key = tuple(fn(outer_row) for fn in key_fns)
                null_key = any(part is None for part in key)
            matched = False
            if not null_key:
                for rid in index.lookup(key):
                    inner_row = table.get(rid)
                    if inner_row is None:
                        continue
                    combined = outer_row + inner_row
                    if residual is None or residual(combined):
                        matched = True
                        yield combined
            if left_outer and not matched:
                yield outer_row + pad

    def batches_impl(self):
        if self.residual is not None:
            # residuals are combined-row closures; keep the row loop and
            # re-batch its output
            yield from batches_from_rows(self.rows_impl(), len(self.columns))
            return
        table = self.table
        index = self.index
        key_batch_fns = self.outer_key_batch_fns
        key_fns = self.outer_key_fns
        pad = (None,) * self._inner_width
        left_outer = self.kind == "left"
        for block in self.outer.batches():
            positions = block.positions()
            if len(positions) == 0:
                continue
            if key_batch_fns is not None:
                key_lists = [
                    fn(block.columns, positions) for fn in key_batch_fns
                ]
            else:
                key_lists = _eval_row_fns(block.columns, positions, key_fns)
            # pass 1: probe the index for every live position, collecting
            # candidate RIDs so the heap fetch can be batched per page
            lookup = index.lookup
            flat_rids = []
            extend_rids = flat_rids.extend
            counts = []  # candidate RIDs per position
            append_count = counts.append
            if len(key_lists) == 1:
                for key in key_lists[0]:
                    if key is None:
                        append_count(0)
                        continue
                    rids = lookup(key)
                    extend_rids(rids)
                    append_count(len(rids))
            else:
                for key in zip(*key_lists):
                    if any(part is None for part in key):
                        append_count(0)
                        continue
                    rids = lookup(key)
                    extend_rids(rids)
                    append_count(len(rids))
            inner_fetched = table.get_many(flat_rids) if flat_rids else []
            # pass 2: stitch fetched rows back to their outer positions
            out_positions = []  # outer position per output row
            append_pos = out_positions.append
            inner_rows = []
            append_row = inner_rows.append
            cursor = 0
            for i, n in zip(positions, counts):
                if n:
                    matched = False
                    for j in range(cursor, cursor + n):
                        inner_row = inner_fetched[j]
                        if inner_row is None:
                            continue
                        matched = True
                        append_pos(i)
                        append_row(inner_row)
                    cursor += n
                    if matched:
                        continue
                if left_outer:
                    append_pos(i)
                    append_row(pad)
            if not inner_rows:
                continue
            outer_columns = [
                [column[i] for i in out_positions]
                for column in block.columns
            ]
            inner_columns = [list(col) for col in zip(*inner_rows)]
            yield ColumnBatch(
                outer_columns + inner_columns, len(inner_rows)
            )


class LateralUnnestOp(Operator):
    """Lateral ``TABLE(VALUES (e1), (e2), ...) AS alias(col,...)``.

    For each input row, evaluates every VALUES row (whose expressions may
    reference the input row) and emits input + values concatenated.  This
    is how OPA/IPA adjacency triads (``lbl0,eid0,val0`` …) explode into
    one row per stored edge (paper §3.2).

    Batch contract: consumes child blocks and emits one dense block per
    input block with ``len(rows_of_fns)`` output rows per live input row,
    interleaved in input-row-major order.  Child column values are
    repeated per VALUES row; each VALUES cell is computed by one kernel
    call per block (``rows_of_batch_fns``) and written with a strided
    slice assignment — the triad columns are gathered without building a
    single row tuple.
    """

    batch_native = True

    def __init__(self, child, rows_of_fns, columns, rows_of_batch_fns=None):
        self.child = child
        self.rows_of_fns = rows_of_fns
        self.rows_of_batch_fns = rows_of_batch_fns
        self.columns = list(child.columns) + list(columns)
        self.est_rows = child.est_rows * max(1, len(rows_of_fns))
        self._value_width = len(columns)

    def rows_impl(self):
        rows_of_fns = self.rows_of_fns
        for row in self.child.rows():
            for fns in rows_of_fns:
                yield row + tuple(fn(row) for fn in fns)

    def batches_impl(self):
        rows_of_fns = self.rows_of_fns
        rows_of_batch_fns = self.rows_of_batch_fns
        value_rows = len(rows_of_fns)
        value_width = self._value_width
        if value_rows == 0:
            return
        for block in self.child.batches():
            positions = block.positions()
            count = len(positions)
            if count == 0:
                continue
            dense = block.sel is None
            total = count * value_rows
            out_columns = []
            for column in block.columns:
                gathered = column if dense else [column[i] for i in positions]
                if value_rows == 1:
                    out_columns.append(
                        list(gathered) if gathered is column else gathered
                    )
                else:
                    out_columns.append(
                        [value for value in gathered for __ in range(value_rows)]
                    )
            value_columns = [[None] * total for __ in range(value_width)]
            for j in range(value_rows):
                if rows_of_batch_fns is not None:
                    value_lists = [
                        fn(block.columns, positions)
                        for fn in rows_of_batch_fns[j]
                    ]
                else:
                    value_lists = _eval_row_fns(
                        block.columns, positions, rows_of_fns[j]
                    )
                for out, values in zip(value_columns, value_lists):
                    out[j::value_rows] = values
            yield ColumnBatch(out_columns + value_columns, total)


class UnionAllOp(Operator):
    """Concatenate children, preserving duplicates and child order.

    Batch contract: passes each child's blocks through unchanged
    (zero-copy).
    """

    batch_native = True

    def __init__(self, children):
        self.children = children
        self.columns = list(children[0].columns)
        self.est_rows = sum(child.est_rows for child in children)

    def rows_impl(self):
        for child in self.children:
            yield from child.rows()

    def batches_impl(self):
        for child in self.children:
            yield from child.batches()


class SetOpOp(Operator):
    """UNION / INTERSECT / EXCEPT with SQL set (distinct) semantics.

    Batch contract: row-native — dedup works on hashable row tuples;
    batches come from the base-class shim.
    """

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right
        self.columns = list(left.columns)
        self.est_rows = max(left.est_rows, right.est_rows)

    def rows_impl(self):
        if self.op == "union":
            seen = set()
            for child in (self.left, self.right):
                for row in child.rows():
                    key = hashable_row(row)
                    if key not in seen:
                        seen.add(key)
                        yield row
            return
        right_set = {hashable_row(row) for row in self.right.rows()}
        emitted = set()
        if self.op == "intersect":
            for row in self.left.rows():
                key = hashable_row(row)
                if key in right_set and key not in emitted:
                    emitted.add(key)
                    yield row
        elif self.op == "except":
            for row in self.left.rows():
                key = hashable_row(row)
                if key not in right_set and key not in emitted:
                    emitted.add(key)
                    yield row
        else:
            raise BindError(f"unknown set operation {self.op!r}")


class DistinctOp(Operator):
    """Drop duplicate rows, keeping first occurrences in order.

    Batch contract: consumes child blocks and narrows each block's
    selection vector to first-seen rows — column lists pass through
    untouched (zero-copy); dedup keys are built straight from the column
    lists without materializing row tuples.
    """

    batch_native = True

    def __init__(self, child):
        self.child = child
        self.columns = child.columns
        self.est_rows = max(1, child.est_rows // 2)

    def rows_impl(self):
        seen = set()
        for row in self.child.rows():
            key = hashable_row(row)
            if key not in seen:
                seen.add(key)
                yield row

    def batches_impl(self):
        seen = set()
        add = seen.add
        for block in self.child.batches():
            columns = block.columns
            sel = []
            append = sel.append
            if not columns:
                for i in block.positions():
                    if () not in seen:
                        add(())
                        append(i)
            elif len(columns) == 1:
                # single-column DISTINCT keys on the value itself — no
                # per-row tuple allocation
                column = columns[0]
                for i in block.positions():
                    key = column[i]
                    try:
                        fresh = key not in seen
                    except TypeError:
                        key = make_hashable(key)
                        fresh = key not in seen
                    if fresh:
                        add(key)
                        append(i)
            else:
                for i in block.positions():
                    # fast path: most values are already hashable scalars;
                    # fall back to make_hashable only when the raw tuple
                    # is unhashable (lists/dicts/sets in a cell)
                    key = tuple([column[i] for column in columns])
                    try:
                        fresh = key not in seen
                    except TypeError:
                        key = tuple(
                            make_hashable(column[i]) for column in columns
                        )
                        fresh = key not in seen
                    if fresh:
                        add(key)
                        append(i)
            if not sel:
                continue
            if len(sel) == block.selected_count():
                yield block
            else:
                yield ColumnBatch(columns, block.length, sel)


class _AggState:
    """Accumulator for one aggregate call within one group."""

    __slots__ = ("kind", "distinct", "count", "total", "minimum", "maximum", "seen")

    def __init__(self, kind, distinct):
        self.kind = kind
        self.distinct = distinct
        self.count = 0
        self.total = None
        self.minimum = None
        self.maximum = None
        self.seen = set() if distinct else None

    def add(self, value):
        if self.kind == "count_star":
            self.count += 1
            return
        if value is None:
            return
        if self.distinct:
            key = make_hashable(value)
            if key in self.seen:
                return
            self.seen.add(key)
        self.count += 1
        if self.kind in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
        elif self.kind == "min":
            if self.minimum is None or total_order_key(value) < total_order_key(
                self.minimum
            ):
                self.minimum = value
        elif self.kind == "max":
            if self.maximum is None or total_order_key(self.maximum) < total_order_key(
                value
            ):
                self.maximum = value

    def result(self):
        if self.kind in ("count", "count_star"):
            return self.count
        if self.kind == "sum":
            return self.total
        if self.kind == "avg":
            return None if self.count == 0 else self.total / self.count
        if self.kind == "min":
            return self.minimum
        if self.kind == "max":
            return self.maximum
        raise BindError(f"unknown aggregate {self.kind!r}")


class AggregateOp(Operator):
    """Hash aggregation.

    Output row layout: group-by values first, then one column per aggregate
    spec.  ``agg_specs`` is a list of ``(kind, value_fn_or_None, distinct)``;
    ``kind == 'count_star'`` needs no value function.

    Batch contract: consumes child blocks, evaluating group keys and
    aggregate inputs per block (vectorized via ``group_batch_fns`` /
    ``agg_batch_fns`` — the latter aligned with ``agg_specs``, ``None``
    entries for ``count_star``); emits one dense block of result rows.
    Group order is first-occurrence, identical to the row path.
    """

    batch_native = True

    def __init__(self, child, group_fns, agg_specs, columns,
                 group_batch_fns=None, agg_batch_fns=None):
        self.child = child
        self.group_fns = group_fns
        self.agg_specs = agg_specs
        self.group_batch_fns = group_batch_fns
        self.agg_batch_fns = agg_batch_fns
        self.columns = list(columns)
        self.est_rows = max(1, child.est_rows // 10) if group_fns else 1

    def rows_impl(self):
        groups = {}
        group_fns = self.group_fns
        specs = self.agg_specs
        for row in self.child.rows():
            key = tuple(make_hashable(fn(row)) for fn in group_fns)
            state = groups.get(key)
            if state is None:
                group_values = tuple(fn(row) for fn in group_fns)
                state = (
                    group_values,
                    [_AggState(kind, distinct) for kind, __, distinct in specs],
                )
                groups[key] = state
            for (kind, value_fn, __), acc in zip(specs, state[1]):
                acc.add(None if value_fn is None else value_fn(row))
        if not groups and not group_fns:
            # global aggregate over empty input still yields one row
            accs = [_AggState(kind, distinct) for kind, __, distinct in specs]
            yield tuple(acc.result() for acc in accs)
            return
        for group_values, accs in groups.values():
            yield group_values + tuple(acc.result() for acc in accs)

    def batches_impl(self):
        groups = {}
        group_fns = self.group_fns
        specs = self.agg_specs
        group_batch_fns = self.group_batch_fns
        agg_batch_fns = self.agg_batch_fns
        for block in self.child.batches():
            positions = block.positions()
            count = len(positions)
            if count == 0:
                continue
            if group_fns:
                if group_batch_fns is not None:
                    group_lists = [
                        fn(block.columns, positions) for fn in group_batch_fns
                    ]
                else:
                    group_lists = _eval_row_fns(
                        block.columns, positions, group_fns
                    )
            else:
                group_lists = None
            value_lists = []
            if agg_batch_fns is not None:
                for fn in agg_batch_fns:
                    value_lists.append(
                        None if fn is None else fn(block.columns, positions)
                    )
            else:
                row_fns = [
                    value_fn for __, value_fn, __d in specs
                ]
                evaluated = _eval_row_fns(
                    block.columns, positions,
                    [fn for fn in row_fns if fn is not None],
                )
                it = iter(evaluated)
                for fn in row_fns:
                    value_lists.append(None if fn is None else next(it))
            for idx in range(count):
                if group_lists is None:
                    key = ()
                else:
                    # fast path mirroring DistinctOp: hash raw values,
                    # normalize via make_hashable only on TypeError
                    key = tuple([lst[idx] for lst in group_lists])
                    try:
                        state = groups.get(key)
                    except TypeError:
                        key = tuple(
                            make_hashable(lst[idx]) for lst in group_lists
                        )
                        state = groups.get(key)
                    if state is None:
                        group_values = tuple(
                            lst[idx] for lst in group_lists
                        )
                        state = (
                            group_values,
                            [
                                _AggState(kind, distinct)
                                for kind, __, distinct in specs
                            ],
                        )
                        groups[key] = state
                    for acc, lst in zip(state[1], value_lists):
                        acc.add(None if lst is None else lst[idx])
                    continue
                state = groups.get(key)
                if state is None:
                    group_values = (
                        ()
                        if group_lists is None
                        else tuple(lst[idx] for lst in group_lists)
                    )
                    state = (
                        group_values,
                        [
                            _AggState(kind, distinct)
                            for kind, __, distinct in specs
                        ],
                    )
                    groups[key] = state
                for acc, lst in zip(state[1], value_lists):
                    acc.add(None if lst is None else lst[idx])
        out_rows = []
        if not groups and not group_fns:
            accs = [_AggState(kind, distinct) for kind, __, distinct in specs]
            out_rows.append(tuple(acc.result() for acc in accs))
        else:
            for group_values, accs in groups.values():
                out_rows.append(
                    group_values + tuple(acc.result() for acc in accs)
                )
        if out_rows:
            yield ColumnBatch.from_rows(out_rows, len(self.columns))


class SortOp(Operator):
    """Stable multi-key sort.

    Batch contract: row-native — sorting materializes row tuples anyway;
    batches come from the base-class shim.
    """

    def __init__(self, child, key_fns, descending_flags):
        self.child = child
        self.key_fns = key_fns
        self.descending_flags = descending_flags
        self.columns = child.columns
        self.est_rows = child.est_rows

    def rows_impl(self):
        materialized = list(self.child.rows())
        # stable multi-key sort: apply keys right-to-left
        for fn, descending in reversed(list(zip(self.key_fns, self.descending_flags))):
            materialized.sort(
                key=lambda row, _fn=fn: total_order_key(_fn(row)), reverse=descending
            )
        return iter(materialized)


class LimitOp(Operator):
    """LIMIT / OFFSET over the child's output order.

    Batch contract: consumes child blocks, slicing each block's selection
    vector to honor the offset and remaining limit (zero-copy — column
    lists pass through), and stops pulling from the child once the limit
    is exhausted.
    """

    batch_native = True

    def __init__(self, child, limit=None, offset=None):
        self.child = child
        self.limit = limit
        self.offset = offset or 0
        self.columns = child.columns
        self.est_rows = min(child.est_rows, limit) if limit is not None else (
            child.est_rows
        )

    def rows_impl(self):
        remaining = self.limit
        to_skip = self.offset
        for row in self.child.rows():
            if to_skip > 0:
                to_skip -= 1
                continue
            if remaining is not None:
                if remaining <= 0:
                    return
                remaining -= 1
            yield row

    def batches_impl(self):
        remaining = self.limit
        if remaining is not None and remaining <= 0:
            return
        to_skip = self.offset
        for block in self.child.batches():
            count = block.selected_count()
            if count == 0:
                continue
            if to_skip >= count:
                to_skip -= count
                continue
            start = to_skip
            to_skip = 0
            end = count
            if remaining is not None:
                end = min(end, start + remaining)
            if start == 0 and end == count:
                yield block
            else:
                positions = block.positions()
                sel = list(positions[start:end])
                yield ColumnBatch(block.columns, block.length, sel)
            if remaining is not None:
                remaining -= end - start
                if remaining <= 0:
                    return
