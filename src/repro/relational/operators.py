"""Physical plan operators for the SQL subset SQLGraph's translator emits.

The operator set mirrors what the paper's Table 8 query templates need at
execution time: index/sequential scans over the adjacency tables (OPA/IPA
with OSA/ISA spill, paper §3.2) and attribute tables (VA/EA, §3.3), UNNEST
for exploding adjacency column triads, hash and index-nested-loop joins
for adjacency hops, plus the projection / filter / distinct / sort /
aggregate / set operators the Gremlin pipes compile into (§4).

Each operator exposes:

* ``columns`` — output schema as a list of ``(qualifier, name)`` pairs,
* ``est_rows`` — the planner's cardinality estimate,
* ``rows()`` — an iterator of output tuples,
* ``children_ops()`` / ``describe()`` — plan-tree introspection, used by
  EXPLAIN and by ``repro.obs.stats.instrument_plan`` for EXPLAIN ANALYZE.

Streaming operators (scan, filter, project, unnest, union-all, limit) are
generators; blocking operators (hash join build side, sort, distinct,
aggregate, set ops) materialize what they must.  Instrumentation shadows
``rows`` with an instance attribute on the plan being analyzed, so the
uninstrumented path pays nothing.
"""

from __future__ import annotations

from repro.relational.errors import BindError
from repro.relational.index import total_order_key


def make_resolver(columns):
    """Build a ``(qualifier, name) -> position`` resolver over *columns*.

    Qualified lookups must match exactly; unqualified lookups must be
    unambiguous across the schema.
    """
    qualified = {}
    unqualified = {}
    for position, (qualifier, name) in enumerate(columns):
        if qualifier is not None:
            qualified[(qualifier, name)] = position
        unqualified.setdefault(name, []).append(position)

    def resolver(qualifier, name):
        if qualifier is not None:
            key = (qualifier, name)
            if key in qualified:
                return qualified[key]
            raise BindError(f"unknown column {qualifier}.{name}")
        positions = unqualified.get(name)
        if not positions:
            raise BindError(f"unknown column {name}")
        if len(positions) > 1:
            raise BindError(f"ambiguous column {name}")
        return positions[0]

    return resolver


def make_hashable(value):
    """Convert a value to a hashable form for set/group operations."""
    if isinstance(value, (list, tuple)):
        return tuple(make_hashable(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, make_hashable(val)) for key, val in value.items()))
    if isinstance(value, set):
        return frozenset(make_hashable(item) for item in value)
    return value


def hashable_row(row):
    return tuple(make_hashable(value) for value in row)


class Operator:
    columns = ()
    est_rows = 0

    def rows(self):
        raise NotImplementedError

    def children_ops(self):
        """Child operators, for plan inspection / EXPLAIN."""
        kids = []
        for attr in ("child", "left", "right", "outer"):
            value = getattr(self, attr, None)
            if isinstance(value, Operator):
                kids.append(value)
        for value in getattr(self, "children", ()) or ():
            if isinstance(value, Operator):
                kids.append(value)
        return kids

    def describe(self):
        """One-line summary used by EXPLAIN."""
        return type(self).__name__


def explain_plan(plan, indent=0):
    """Render an operator tree as an indented text plan."""
    lines = [f"{'  ' * indent}{plan.describe()}  (est_rows={plan.est_rows})"]
    for child in plan.children_ops():
        lines.extend(explain_plan(child, indent + 1).splitlines())
    return "\n".join(lines)


class SeqScan(Operator):
    """Full scan of a heap table, optionally with a pushed-down predicate."""

    def __init__(self, table, qualifier, predicate=None, est_rows=None):
        self.table = table
        self.qualifier = qualifier
        self.predicate = predicate
        self.columns = [(qualifier, name) for name in table.schema.column_names]
        self.est_rows = est_rows if est_rows is not None else table.live_rows

    def describe(self):
        suffix = " filtered" if self.predicate is not None else ""
        return f"SeqScan({self.table.name} as {self.qualifier}){suffix}"

    def rows(self):
        predicate = self.predicate
        if predicate is None:
            yield from self.table.scan_rows()
            return
        for row in self.table.scan_rows():
            if predicate(row):
                yield row


class IndexEqScan(Operator):
    """Equality lookup through a hash or sorted index with constant keys."""

    def __init__(self, table, qualifier, index, keys, predicate=None, est_rows=1):
        self.table = table
        self.qualifier = qualifier
        self.index = index
        self.keys = keys  # list of constant keys to probe
        self.predicate = predicate
        self.columns = [(qualifier, name) for name in table.schema.column_names]
        self.est_rows = est_rows

    def describe(self):
        return (
            f"IndexEqScan({self.table.name} as {self.qualifier} "
            f"via {self.index.name})"
        )

    def rows(self):
        table = self.table
        predicate = self.predicate
        for key in self.keys:
            for rid in self.index.lookup(key):
                row = table.get(rid)
                if row is None:
                    continue
                if predicate is None or predicate(row):
                    yield row


class IndexRangeScan(Operator):
    """Range scan through a sorted index."""

    def __init__(self, table, qualifier, index, low, high, low_inclusive,
                 high_inclusive, predicate=None, est_rows=1):
        self.table = table
        self.qualifier = qualifier
        self.index = index
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.predicate = predicate
        self.columns = [(qualifier, name) for name in table.schema.column_names]
        self.est_rows = est_rows

    def describe(self):
        return (
            f"IndexRangeScan({self.table.name} as {self.qualifier} "
            f"via {self.index.name})"
        )

    def rows(self):
        table = self.table
        predicate = self.predicate
        for rid in self.index.range_scan(
            self.low, self.high, self.low_inclusive, self.high_inclusive
        ):
            row = table.get(rid)
            if row is None:
                continue
            if predicate is None or predicate(row):
                yield row


class MaterializedScan(Operator):
    """Scan over an in-memory row list (CTE results, VALUES, subqueries)."""

    def __init__(self, rows_list, columns, predicate=None):
        self._rows = rows_list
        self.columns = list(columns)
        self.predicate = predicate
        self.est_rows = len(rows_list)

    def describe(self):
        return f"MaterializedScan({len(self._rows)} rows)"

    def rows(self):
        if self.predicate is None:
            return iter(self._rows)
        predicate = self.predicate
        return (row for row in self._rows if predicate(row))


class FilterOp(Operator):
    def __init__(self, child, predicate, est_rows=None):
        self.child = child
        self.predicate = predicate
        self.columns = child.columns
        self.est_rows = est_rows if est_rows is not None else max(
            1, child.est_rows // 3
        )

    def rows(self):
        predicate = self.predicate
        for row in self.child.rows():
            if predicate(row):
                yield row


class ProjectOp(Operator):
    def __init__(self, child, value_fns, columns):
        self.child = child
        self.value_fns = value_fns
        self.columns = list(columns)
        self.est_rows = child.est_rows

    def rows(self):
        fns = self.value_fns
        for row in self.child.rows():
            yield tuple(fn(row) for fn in fns)


class HashJoinOp(Operator):
    """Equi hash join; builds on the right child.

    ``kind`` is ``'inner'`` or ``'left'`` (left outer: unmatched left rows are
    padded with NULLs).  ``residual`` is an optional extra predicate over the
    combined row.
    """

    def __init__(self, left, right, left_key_fns, right_key_fns, kind="inner",
                 residual=None, est_rows=None):
        self.left = left
        self.right = right
        self.left_key_fns = left_key_fns
        self.right_key_fns = right_key_fns
        self.kind = kind
        self.residual = residual
        self.columns = list(left.columns) + list(right.columns)
        if est_rows is None:
            est_rows = max(left.est_rows, right.est_rows)
        self.est_rows = est_rows

    def describe(self):
        return f"HashJoin[{self.kind}]"

    def rows(self):
        build = {}
        right_keys = self.right_key_fns
        for row in self.right.rows():
            key = tuple(make_hashable(fn(row)) for fn in right_keys)
            if any(part is None for part in key):
                continue  # NULL never joins
            build.setdefault(key, []).append(row)
        left_keys = self.left_key_fns
        residual = self.residual
        pad = (None,) * len(self.right.columns)
        left_outer = self.kind == "left"
        for left_row in self.left.rows():
            key = tuple(make_hashable(fn(left_row)) for fn in left_keys)
            matches = build.get(key) if not any(part is None for part in key) else None
            matched = False
            if matches:
                for right_row in matches:
                    combined = left_row + right_row
                    if residual is None or residual(combined):
                        matched = True
                        yield combined
            if left_outer and not matched:
                yield left_row + pad


class NestedLoopJoinOp(Operator):
    """Fallback join for non-equi conditions; right side is materialized."""

    def __init__(self, left, right, condition=None, kind="inner", est_rows=None):
        self.left = left
        self.right = right
        self.condition = condition
        self.kind = kind
        self.columns = list(left.columns) + list(right.columns)
        if est_rows is None:
            est_rows = max(1, left.est_rows * max(right.est_rows, 1))
        self.est_rows = est_rows

    def rows(self):
        right_rows = list(self.right.rows())
        condition = self.condition
        pad = (None,) * len(self.right.columns)
        left_outer = self.kind == "left"
        for left_row in self.left.rows():
            matched = False
            for right_row in right_rows:
                combined = left_row + right_row
                if condition is None or condition(combined):
                    matched = True
                    yield combined
            if left_outer and not matched:
                yield left_row + pad


class IndexNLJoinOp(Operator):
    """Index nested-loop join: probe an index of the inner base table with a
    key computed from each outer row."""

    def __init__(self, outer, table, qualifier, index, outer_key_fns,
                 residual=None, kind="inner", est_rows=None):
        self.outer = outer
        self.table = table
        self.qualifier = qualifier
        self.index = index
        self.outer_key_fns = outer_key_fns
        self.residual = residual
        self.kind = kind
        inner_columns = [(qualifier, name) for name in table.schema.column_names]
        self.columns = list(outer.columns) + inner_columns
        self._inner_width = len(inner_columns)
        self.est_rows = est_rows if est_rows is not None else outer.est_rows

    def describe(self):
        return (
            f"IndexNLJoin[{self.kind}]({self.table.name} as {self.qualifier} "
            f"via {self.index.name})"
        )

    def rows(self):
        table = self.table
        index = self.index
        key_fns = self.outer_key_fns
        residual = self.residual
        pad = (None,) * self._inner_width
        left_outer = self.kind == "left"
        single = len(key_fns) == 1
        for outer_row in self.outer.rows():
            if single:
                key = key_fns[0](outer_row)
                null_key = key is None
            else:
                key = tuple(fn(outer_row) for fn in key_fns)
                null_key = any(part is None for part in key)
            matched = False
            if not null_key:
                for rid in index.lookup(key):
                    inner_row = table.get(rid)
                    if inner_row is None:
                        continue
                    combined = outer_row + inner_row
                    if residual is None or residual(combined):
                        matched = True
                        yield combined
            if left_outer and not matched:
                yield outer_row + pad


class LateralUnnestOp(Operator):
    """Lateral ``TABLE(VALUES (e1), (e2), ...) AS alias(col,...)``.

    For each input row, evaluates every VALUES row (whose expressions may
    reference the input row) and emits input + values concatenated.
    """

    def __init__(self, child, rows_of_fns, columns):
        self.child = child
        self.rows_of_fns = rows_of_fns
        self.columns = list(child.columns) + list(columns)
        self.est_rows = child.est_rows * max(1, len(rows_of_fns))

    def rows(self):
        rows_of_fns = self.rows_of_fns
        for row in self.child.rows():
            for fns in rows_of_fns:
                yield row + tuple(fn(row) for fn in fns)


class UnionAllOp(Operator):
    def __init__(self, children):
        self.children = children
        self.columns = list(children[0].columns)
        self.est_rows = sum(child.est_rows for child in children)

    def rows(self):
        for child in self.children:
            yield from child.rows()


class SetOpOp(Operator):
    """UNION / INTERSECT / EXCEPT with SQL set (distinct) semantics."""

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right
        self.columns = list(left.columns)
        self.est_rows = max(left.est_rows, right.est_rows)

    def rows(self):
        if self.op == "union":
            seen = set()
            for child in (self.left, self.right):
                for row in child.rows():
                    key = hashable_row(row)
                    if key not in seen:
                        seen.add(key)
                        yield row
            return
        right_set = {hashable_row(row) for row in self.right.rows()}
        emitted = set()
        if self.op == "intersect":
            for row in self.left.rows():
                key = hashable_row(row)
                if key in right_set and key not in emitted:
                    emitted.add(key)
                    yield row
        elif self.op == "except":
            for row in self.left.rows():
                key = hashable_row(row)
                if key not in right_set and key not in emitted:
                    emitted.add(key)
                    yield row
        else:
            raise BindError(f"unknown set operation {self.op!r}")


class DistinctOp(Operator):
    def __init__(self, child):
        self.child = child
        self.columns = child.columns
        self.est_rows = max(1, child.est_rows // 2)

    def rows(self):
        seen = set()
        for row in self.child.rows():
            key = hashable_row(row)
            if key not in seen:
                seen.add(key)
                yield row


class _AggState:
    """Accumulator for one aggregate call within one group."""

    __slots__ = ("kind", "distinct", "count", "total", "minimum", "maximum", "seen")

    def __init__(self, kind, distinct):
        self.kind = kind
        self.distinct = distinct
        self.count = 0
        self.total = None
        self.minimum = None
        self.maximum = None
        self.seen = set() if distinct else None

    def add(self, value):
        if self.kind == "count_star":
            self.count += 1
            return
        if value is None:
            return
        if self.distinct:
            key = make_hashable(value)
            if key in self.seen:
                return
            self.seen.add(key)
        self.count += 1
        if self.kind in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
        elif self.kind == "min":
            if self.minimum is None or total_order_key(value) < total_order_key(
                self.minimum
            ):
                self.minimum = value
        elif self.kind == "max":
            if self.maximum is None or total_order_key(self.maximum) < total_order_key(
                value
            ):
                self.maximum = value

    def result(self):
        if self.kind in ("count", "count_star"):
            return self.count
        if self.kind == "sum":
            return self.total
        if self.kind == "avg":
            return None if self.count == 0 else self.total / self.count
        if self.kind == "min":
            return self.minimum
        if self.kind == "max":
            return self.maximum
        raise BindError(f"unknown aggregate {self.kind!r}")


class AggregateOp(Operator):
    """Hash aggregation.

    Output row layout: group-by values first, then one column per aggregate
    spec.  ``agg_specs`` is a list of ``(kind, value_fn_or_None, distinct)``;
    ``kind == 'count_star'`` needs no value function.
    """

    def __init__(self, child, group_fns, agg_specs, columns):
        self.child = child
        self.group_fns = group_fns
        self.agg_specs = agg_specs
        self.columns = list(columns)
        self.est_rows = max(1, child.est_rows // 10) if group_fns else 1

    def rows(self):
        groups = {}
        group_fns = self.group_fns
        specs = self.agg_specs
        for row in self.child.rows():
            key = tuple(make_hashable(fn(row)) for fn in group_fns)
            state = groups.get(key)
            if state is None:
                group_values = tuple(fn(row) for fn in group_fns)
                state = (
                    group_values,
                    [_AggState(kind, distinct) for kind, __, distinct in specs],
                )
                groups[key] = state
            for (kind, value_fn, __), acc in zip(specs, state[1]):
                acc.add(None if value_fn is None else value_fn(row))
        if not groups and not group_fns:
            # global aggregate over empty input still yields one row
            accs = [_AggState(kind, distinct) for kind, __, distinct in specs]
            yield tuple(acc.result() for acc in accs)
            return
        for group_values, accs in groups.values():
            yield group_values + tuple(acc.result() for acc in accs)


class SortOp(Operator):
    def __init__(self, child, key_fns, descending_flags):
        self.child = child
        self.key_fns = key_fns
        self.descending_flags = descending_flags
        self.columns = child.columns
        self.est_rows = child.est_rows

    def rows(self):
        materialized = list(self.child.rows())
        # stable multi-key sort: apply keys right-to-left
        for fn, descending in reversed(list(zip(self.key_fns, self.descending_flags))):
            materialized.sort(
                key=lambda row, _fn=fn: total_order_key(_fn(row)), reverse=descending
            )
        return iter(materialized)


class LimitOp(Operator):
    def __init__(self, child, limit=None, offset=None):
        self.child = child
        self.limit = limit
        self.offset = offset or 0
        self.columns = child.columns
        self.est_rows = min(child.est_rows, limit) if limit is not None else (
            child.est_rows
        )

    def rows(self):
        remaining = self.limit
        to_skip = self.offset
        for row in self.child.rows():
            if to_skip > 0:
                to_skip -= 1
                continue
            if remaining is not None:
                if remaining <= 0:
                    return
                remaining -= 1
            yield row
