"""Heap tables: paged row storage with index maintenance.

A row is addressed by its RID ``(page_no, slot)``.  Deleting a row leaves a
``None`` tombstone in the slot (RIDs are never reused), which keeps index
entries and undo records stable.
"""

from __future__ import annotations

from repro.relational.errors import CatalogError
from repro.relational.pages import PAGE_CAPACITY


class HeapTable:
    """A heap of rows for one table, living behind a shared buffer pool."""

    def __init__(self, schema, buffer_pool):
        self.schema = schema
        self.name = schema.name
        self._pool = buffer_pool
        self._blobs: list[bytes | None] = []
        self._page_count = 0
        self._last_page_size = 0
        self.live_rows = 0
        #: monotonic mutation watermarks — the statistics subsystem records
        #: them at ANALYZE time to measure drift (never decremented)
        self.insert_count = 0
        self.delete_count = 0
        self.indexes: dict[str, object] = {}
        #: write-ahead log all mutations report to (None = in-memory only);
        #: installed by the catalog of a durable database
        self.wal = None
        #: callable returning the active Transaction (or None); installed
        #: by the catalog so undo is captured here — the same layer as WAL
        #: logging — which covers bulk loaders and stored procedures that
        #: mutate tables directly, not just SQL DML
        self.txn_source = None

    def _transaction(self):
        source = self.txn_source
        return source() if source is not None else None

    # ------------------------------------------------------------------
    # page-blob interface used by the buffer pool
    # ------------------------------------------------------------------
    def page_blob(self, page_no):
        return self._blobs[page_no]

    def store_page_blob(self, page_no, blob):
        self._blobs[page_no] = blob

    @property
    def page_count(self):
        return self._page_count

    def storage_bytes(self):
        """Approximate on-'disk' size: total bytes of serialized pages.

        Resident-only pages are not counted until they are written back;
        benchmarks call :meth:`repro.relational.pages.BufferPool.clear` first
        when they want an exact figure.
        """
        return sum(len(blob) for blob in self._blobs if blob is not None)

    # ------------------------------------------------------------------
    # row operations
    # ------------------------------------------------------------------
    def insert(self, values, coerce=True):
        """Append a row; returns its RID.  Maintains all indexes."""
        row = self.schema.coerce_row(values) if coerce else tuple(values)
        if self._page_count == 0 or self._last_page_size >= PAGE_CAPACITY:
            page_no = self._page_count
            self._blobs.append(None)
            self._page_count += 1
            self._pool.add_page(self, page_no, [])
            self._last_page_size = 0
        page_no = self._page_count - 1
        rows = self._pool.fetch(self, page_no, for_write=True)
        slot = len(rows)
        rid = (page_no, slot)
        inserted = []
        try:
            for index in self.indexes.values():
                index.insert(rid, row)
                inserted.append(index)
        except Exception:
            for index in inserted:
                index.delete(rid, row)
            raise
        rows.append(row)
        self._last_page_size = slot + 1
        self.live_rows += 1
        self.insert_count += 1
        transaction = self._transaction()
        if transaction is not None:
            transaction.record_insert(self, rid)
        wal = self.wal
        if wal is not None and wal.active:
            wal.log_op("insert", self.name, rid, row)
        return rid

    def get(self, rid):
        """Return the row at *rid*, or ``None`` if it was deleted."""
        page_no, slot = rid
        rows = self._pool.fetch(self, page_no)
        return rows[slot]

    def get_many(self, rids):
        """Return the rows at *rids* in order (deleted slots as ``None``).

        Batched point lookup for the vectorized executor: each distinct
        page is fetched from the buffer pool once per call, so an index
        probe over co-located RIDs pays one pool touch per page instead
        of one per row.
        """
        fetch = self._pool.fetch
        pages = {}
        out = []
        append = out.append
        for page_no, slot in rids:
            rows = pages.get(page_no)
            if rows is None:
                rows = pages[page_no] = fetch(self, page_no)
            append(rows[slot])
        return out

    def delete(self, rid):
        """Tombstone the row at *rid*; returns the old row (or ``None``)."""
        page_no, slot = rid
        rows = self._pool.fetch(self, page_no, for_write=True)
        old = rows[slot]
        if old is None:
            return None
        for index in self.indexes.values():
            index.delete(rid, old)
        rows[slot] = None
        self.live_rows -= 1
        self.delete_count += 1
        transaction = self._transaction()
        if transaction is not None:
            transaction.record_delete(self, rid, old)
        wal = self.wal
        if wal is not None and wal.active:
            wal.log_op("delete", self.name, rid, old)
        return old

    def update(self, rid, values, coerce=True):
        """Replace the row at *rid*; returns the old row."""
        new_row = self.schema.coerce_row(values) if coerce else tuple(values)
        page_no, slot = rid
        rows = self._pool.fetch(self, page_no, for_write=True)
        old = rows[slot]
        if old is None:
            return None
        for index in self.indexes.values():
            index.update(rid, old, new_row)
        rows[slot] = new_row
        transaction = self._transaction()
        if transaction is not None:
            transaction.record_update(self, rid, old)
        wal = self.wal
        if wal is not None and wal.active:
            wal.log_op("update", self.name, rid, new_row, old)
        return old

    def restore(self, rid, row):
        """Undo helper: put *row* back into a tombstoned slot."""
        page_no, slot = rid
        rows = self._pool.fetch(self, page_no, for_write=True)
        if rows[slot] is not None:
            return
        for index in self.indexes.values():
            index.insert(rid, row)
        rows[slot] = row
        self.live_rows += 1
        self.insert_count += 1
        transaction = self._transaction()
        if transaction is not None:
            transaction.record_insert(self, rid)
        wal = self.wal
        if wal is not None and wal.active:
            wal.log_op("insert", self.name, rid, row)

    # ------------------------------------------------------------------
    # physical redo (crash recovery; see repro.relational.recovery)
    # ------------------------------------------------------------------
    def apply_insert(self, rid, row):
        """Redo an insert at its original RID.

        Unlike :meth:`insert` this honors *rid* exactly, growing pages and
        leaving skipped slots as ``None`` tombstones — replay omits loser
        transactions, so holes where their rows once sat are expected and
        every RID embedded in a later record stays valid.
        """
        page_no, slot = rid
        while self._page_count <= page_no:
            self._blobs.append(None)
            self._pool.add_page(self, self._page_count, [])
            self._page_count += 1
            self._last_page_size = 0
        rows = self._pool.fetch(self, page_no, for_write=True)
        while len(rows) <= slot:
            rows.append(None)
        row = tuple(row)
        old = rows[slot]
        if old is not None:  # defensive: replay over a stale slot
            for index in self.indexes.values():
                index.delete(rid, old)
            self.live_rows -= 1
        for index in self.indexes.values():
            index.insert(rid, row)
        rows[slot] = row
        self.live_rows += 1
        self.insert_count += 1
        if page_no == self._page_count - 1:
            self._last_page_size = max(self._last_page_size, len(rows))

    def apply_update(self, rid, row):
        """Redo an update: replace the image at *rid*."""
        page_no, slot = rid
        rows = self._pool.fetch(self, page_no, for_write=True)
        old = rows[slot]
        if old is None:
            self.apply_insert(rid, row)
            return
        row = tuple(row)
        for index in self.indexes.values():
            index.update(rid, old, row)
        rows[slot] = row

    def apply_delete(self, rid):
        """Redo a delete: tombstone the slot at *rid*."""
        page_no, slot = rid
        if page_no >= self._page_count:
            return
        rows = self._pool.fetch(self, page_no, for_write=True)
        if slot >= len(rows):
            return
        old = rows[slot]
        if old is None:
            return
        for index in self.indexes.values():
            index.delete(rid, old)
        rows[slot] = None
        self.live_rows -= 1
        self.delete_count += 1

    def scan(self):
        """Yield ``(rid, row)`` for every live row."""
        for page_no in range(self._page_count):
            rows = self._pool.fetch(self, page_no)
            for slot, row in enumerate(rows):
                if row is not None:
                    yield (page_no, slot), row

    def scan_rows(self):
        """Yield live rows only (no RIDs) — the common read path."""
        for page_no in range(self._page_count):
            for row in self._pool.fetch(self, page_no):
                if row is not None:
                    yield row

    def scan_batches(self, batch_size=None):
        """Yield live rows as dense :class:`~repro.relational.batch.
        ColumnBatch` blocks, in heap order.

        Each page's live rows are transposed with ``zip(*rows)`` (C speed)
        and accumulated until *batch_size* rows are buffered; tombstoned
        slots are filtered out before transposing, so emitted batches are
        always dense (``sel is None``).
        """
        from repro.relational.batch import BATCH_SIZE, ColumnBatch

        if batch_size is None:
            batch_size = BATCH_SIZE
        width = len(self.schema.columns)
        buffered = []
        for page_no in range(self._page_count):
            page = self._pool.fetch(self, page_no)
            live = [row for row in page if row is not None]
            if live:
                buffered.extend(live)
            if len(buffered) >= batch_size:
                yield ColumnBatch.from_rows(buffered, width)
                buffered = []
        if buffered:
            yield ColumnBatch.from_rows(buffered, width)

    # ------------------------------------------------------------------
    # index management
    # ------------------------------------------------------------------
    def attach_index(self, index, populate=True):
        if index.name in self.indexes:
            raise CatalogError(f"index {index.name!r} already exists")
        if populate:
            for rid, row in self.scan():
                index.insert(rid, row)
        self.indexes[index.name] = index
        return index

    def drop_index(self, index_name):
        self.indexes.pop(index_name.lower(), None)

    def find_index(self, fingerprint, kind=None):
        """Return an index whose fingerprint matches, preferring hash."""
        matches = [
            index
            for index in self.indexes.values()
            if index.fingerprint == fingerprint and (kind is None or index.kind == kind)
        ]
        if not matches:
            return None
        matches.sort(key=lambda index: 0 if index.kind == "hash" else 1)
        return matches[0]
