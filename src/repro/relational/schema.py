"""Column types and table schemas.

Values are represented by plain Python objects at runtime:

========== =======================
SQL type   Python representation
========== =======================
INTEGER    ``int``
DOUBLE     ``float`` (or ``int``)
STRING     ``str``
BOOLEAN    ``bool``
JSON       ``dict`` / ``list`` / scalar
ANY        anything (untyped column)
========== =======================

SQL ``NULL`` is ``None`` everywhere.  Type checking is deliberately loose
(this is a dynamically typed engine in the SQLite tradition): declared types
drive coercion on insert and planner decisions, not hard runtime errors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.relational.errors import BindError, TypeMismatchError

#: tables whose (lowercased) name starts with this prefix are *scratch*
#: state: per-run temporaries of the analytics drivers
#: (:mod:`repro.graph.analytics`).  They are excluded from checkpoint
#: snapshots, dropped after recovery, and skipped by auto-ANALYZE — a
#: durable database can never come back up with one.
SCRATCH_TABLE_PREFIX = "scratch_"


class ColumnType(enum.Enum):
    """Declared type of a table column."""

    INTEGER = "INTEGER"
    DOUBLE = "DOUBLE"
    STRING = "STRING"
    BOOLEAN = "BOOLEAN"
    JSON = "JSON"
    ANY = "ANY"

    @classmethod
    def from_name(cls, name):
        """Map a SQL type name (including common aliases) to a ColumnType."""
        normalized = name.strip().upper()
        aliases = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "DOUBLE": cls.DOUBLE,
            "FLOAT": cls.DOUBLE,
            "REAL": cls.DOUBLE,
            "DECIMAL": cls.DOUBLE,
            "STRING": cls.STRING,
            "TEXT": cls.STRING,
            "VARCHAR": cls.STRING,
            "CHAR": cls.STRING,
            "CLOB": cls.STRING,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
            "JSON": cls.JSON,
            "ANY": cls.ANY,
        }
        if normalized not in aliases:
            raise TypeMismatchError(f"unknown column type: {name!r}")
        return aliases[normalized]


def coerce_value(value, column_type):
    """Coerce *value* to *column_type* on insert/update.

    ``None`` passes through unchanged.  Coercion failures raise
    :class:`TypeMismatchError`.
    """
    if value is None or column_type in (ColumnType.ANY, ColumnType.JSON):
        return value
    try:
        if column_type is ColumnType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            if isinstance(value, str):
                return int(value)
        elif column_type is ColumnType.DOUBLE:
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return value
            if isinstance(value, str):
                return float(value)
        elif column_type is ColumnType.STRING:
            if isinstance(value, str):
                return value
            if isinstance(value, (int, float, bool)):
                return str(value)
        elif column_type is ColumnType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, int):
                return bool(value)
    except (TypeError, ValueError) as exc:
        raise TypeMismatchError(
            f"cannot coerce {value!r} to {column_type.value}"
        ) from exc
    raise TypeMismatchError(f"cannot coerce {value!r} to {column_type.value}")


@dataclass(frozen=True)
class Column:
    """A named, typed column in a table schema."""

    name: str
    type: ColumnType = ColumnType.ANY

    def __post_init__(self):
        object.__setattr__(self, "name", self.name.lower())


@dataclass
class TableSchema:
    """Schema of a heap table: ordered columns plus an optional primary key."""

    name: str
    columns: list[Column]
    primary_key: str | None = None
    _positions: dict[str, int] = field(init=False, repr=False)

    def __post_init__(self):
        self.name = self.name.lower()
        if self.primary_key is not None:
            self.primary_key = self.primary_key.lower()
        self._positions = {col.name: i for i, col in enumerate(self.columns)}
        if len(self._positions) != len(self.columns):
            raise BindError(f"duplicate column name in table {self.name!r}")
        if self.primary_key is not None and self.primary_key not in self._positions:
            raise BindError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )

    @property
    def column_names(self):
        return [col.name for col in self.columns]

    def position(self, column_name):
        """Return the ordinal position of *column_name* (case-insensitive)."""
        key = column_name.lower()
        if key not in self._positions:
            raise BindError(f"no column {column_name!r} in table {self.name!r}")
        return self._positions[key]

    def has_column(self, column_name):
        return column_name.lower() in self._positions

    def coerce_row(self, values):
        """Coerce a full row of values to the declared column types."""
        if len(values) != len(self.columns):
            raise BindError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        return tuple(
            coerce_value(value, col.type) for value, col in zip(values, self.columns)
        )

    # ------------------------------------------------------------------
    # durable snapshot form (see repro.relational.recovery) — plain
    # dicts/strings so the on-disk format is independent of class layout
    # ------------------------------------------------------------------
    def describe(self):
        """Portable description used by checkpoint snapshots."""
        return {
            "name": self.name,
            "columns": [(col.name, col.type.value) for col in self.columns],
            "primary_key": self.primary_key,
        }

    @classmethod
    def from_description(cls, description):
        """Rebuild a schema from :meth:`describe` output."""
        columns = [
            Column(name, ColumnType(type_name))
            for name, type_name in description["columns"]
        ]
        return cls(description["name"], columns, description["primary_key"])
