"""Columnar execution blocks: :class:`ColumnBatch` and the vectorized knob.

The executor's hot path moves data *batch-at-a-time* instead of
row-at-a-time (see ``docs/EXECUTION.md``).  A batch is a small set of
parallel Python lists — one per output column — plus an optional
*selection vector* of live positions, so filters and DISTINCT narrow a
batch without copying any values.  Operators hand batches to each other
through ``Operator.batches()``; the classic ``Operator.rows()`` iterator
remains as the row-compatibility shim for consumers that want tuples
(ResultSet materialization, Gremlin result unwrapping, sorts, the
recursive-CTE dedup loop).

Batches are **immutable once yielded**: downstream operators may alias
the column lists (zero-copy projection/filter/distinct) but must never
mutate them; narrowing happens by replacing the selection vector only.

The ``REPRO_VECTORIZED`` environment variable (default on; ``0``
disables) selects the executor at plan time.  With vectorization off,
every operator runs its legacy row-at-a-time implementation — the exact
pre-batch code path — which the differential suite uses as the oracle.
"""

from __future__ import annotations

import os

#: rows per batch produced by scans and the row→batch shim.  Large enough
#: to amortize per-batch overhead, small enough to keep selection vectors
#: and value lists cache-friendly.
BATCH_SIZE = 1024

_ENABLED = os.environ.get("REPRO_VECTORIZED", "1") != "0"


def enabled():
    """Is batch-at-a-time execution on for newly executed plans?"""
    return _ENABLED


def set_enabled(flag):
    """Force the executor mode (tests / benchmarks).  Returns the old value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


class row_mode:
    """Context manager running the block with vectorization forced off."""

    def __enter__(self):
        self._previous = set_enabled(False)
        return self

    def __exit__(self, exc_type, exc, tb):
        set_enabled(self._previous)
        return False


class BatchRow:
    """A lazy row view over one batch position.

    Compiled row closures only ever index the row (``row[position]``), so
    a :class:`BatchRow` lets an unvectorized expression evaluate against a
    batch without materializing a tuple per row.  Reused across positions:
    set :attr:`i` and call the closure.
    """

    __slots__ = ("columns", "i")

    def __init__(self, columns, i=0):
        self.columns = columns
        self.i = i

    def __getitem__(self, position):
        return self.columns[position][self.i]

    def __len__(self):
        return len(self.columns)


class ColumnBatch:
    """A block of rows stored column-wise.

    :param columns: one Python list per output column; all the same length.
    :param length: number of physical row positions (explicit so that
        zero-column relations — ``SELECT COUNT(*)`` inputs — keep a row
        count).
    :param sel: optional ascending selection vector of live positions;
        ``None`` means every position is live.  All batch consumers must
        honor it — actual-row accounting counts *selected* positions, never
        physical batch sizes.
    """

    __slots__ = ("columns", "length", "sel")

    def __init__(self, columns, length, sel=None):
        self.columns = columns
        self.length = length
        self.sel = sel

    @classmethod
    def from_rows(cls, rows, width):
        """Transpose a list of row tuples into a dense batch."""
        if not rows:
            return cls([[] for __ in range(width)], 0)
        if width == 0:
            return cls([], len(rows))
        return cls([list(column) for column in zip(*rows)], len(rows))

    def selected_count(self):
        """Number of live rows (the EXPLAIN ANALYZE ``actual_rows`` unit)."""
        if self.sel is not None:
            return len(self.sel)
        return self.length

    def positions(self):
        """Live positions, in order (a list or a range)."""
        if self.sel is not None:
            return self.sel
        return range(self.length)

    def iter_rows(self):
        """Yield live rows as tuples, in position order (the row shim)."""
        columns = self.columns
        if not columns:
            for __ in range(self.selected_count()):
                yield ()
            return
        if self.sel is None:
            yield from zip(*columns)
            return
        for i in self.sel:
            yield tuple(column[i] for column in columns)

    def compact(self):
        """Return a dense batch (selection applied).  Zero-copy when the
        batch already is dense."""
        if self.sel is None:
            return self
        sel = self.sel
        return ColumnBatch(
            [[column[i] for i in sel] for column in self.columns], len(sel)
        )

    def __repr__(self):
        return (
            f"ColumnBatch({len(self.columns)} cols x {self.length} rows, "
            f"{self.selected_count()} selected)"
        )


def batches_from_rows(row_iter, width, batch_size=BATCH_SIZE):
    """Wrap a row iterator into dense batches (the row→batch shim)."""
    buffer = []
    append = buffer.append
    for row in row_iter:
        append(row)
        if len(buffer) >= batch_size:
            yield ColumnBatch.from_rows(buffer, width)
            buffer = []
            append = buffer.append
    if buffer:
        yield ColumnBatch.from_rows(buffer, width)


class MaterializedRelation:
    """A materialized intermediate result (CTE / FROM-subquery body).

    Stores either a list of row tuples (row mode, recursive CTEs) or a
    list of dense :class:`ColumnBatch` objects (batch mode), and serves
    both access styles so :class:`~repro.relational.operators.
    MaterializedScan` never transposes on the hot path.
    """

    __slots__ = ("_rows", "_batches", "width", "_count")

    def __init__(self, width, rows=None, batches=None):
        self.width = width
        self._rows = rows
        self._batches = batches
        if rows is not None:
            self._count = len(rows)
        else:
            self._count = sum(batch.selected_count() for batch in batches)

    @classmethod
    def from_plan(cls, plan):
        """Materialize *plan* in the executor's current mode."""
        width = len(plan.columns)
        if enabled():
            return cls(
                width, batches=[batch.compact() for batch in plan.batches()]
            )
        return cls(width, rows=list(plan.rows()))

    def row_count(self):
        return self._count

    def iter_rows(self):
        if self._rows is not None:
            return iter(self._rows)
        return (row for batch in self._batches for row in batch.iter_rows())

    def iter_batches(self):
        if self._batches is not None:
            yield from self._batches
        else:
            yield from batches_from_rows(self._rows, self.width)
