"""Binder + planner: turn parsed statements into physical operator trees.

This is the optimizer the paper delegates to when it says "the relational
engine does the work" (SQLGraph, SIGMOD 2015, §4): the translator emits one
``WITH ... SELECT`` per Gremlin pipeline (Table 8 templates) and relies on
this layer for access-path selection and join ordering.  The CTE-heavy plan
shapes it must handle well are exactly those of the paper's Figures 3/6
traversal queries (chains of adjacency CTEs) and Figure 4 attribute lookups
(``JSON_VAL`` expression indexes, §3.4).

The planner is statistics-driven but deliberately simple:

* single-table conjuncts are pushed into scans, with access-path selection
  (hash index for equality, sorted index for ranges / prefix LIKE /
  ``IS NOT NULL``, sequential scan otherwise);
* joins are ordered greedily from the smallest filtered leaf, preferring
  index nested-loop joins into base tables when the probe side is small and
  hash joins otherwise (the ``index_probe_cost`` planner option moves the
  crossover, modelling the paper's RAM vs. disk regimes of Figure 8);
* CTEs are materialized once, in definition order; ``WITH RECURSIVE`` is
  evaluated semi-naively with set semantics and an iteration guard (the
  translator's recursive-loop fallback, §4.3).

Observability: when :attr:`Planner.stats` is set to an
:class:`repro.obs.stats.ExecutionStats`, every non-recursive CTE sub-plan
is instrumented before materialization and recorded in ``stats.cte_plans``
— this is how ``EXPLAIN ANALYZE`` sees inside the translator's CTE
pipelines even though CTEs run at plan time in this engine.

Correlated subqueries are not supported (the Gremlin translator never emits
them); IN/EXISTS/scalar subqueries are evaluated once, lazily.
"""

from __future__ import annotations

import copy

from repro.relational import batch as batch_mod
from repro.relational import expressions as ex
from repro.relational import operators as op
from repro.relational import stats as stats_mod
from repro.relational.batch import MaterializedRelation
from repro.relational.errors import BindError
from repro.relational.sql import ast_nodes as ast

MAX_RECURSION_ROUNDS = 100_000

# no-statistics fallback constants: exact pre-ANALYZE planner behavior,
# also what REPRO_COSTED=0 pins the planner to
DEFAULT_NDV = 20
EQ_FALLBACK_SELECTIVITY = 0.05
RANGE_SELECTIVITY = 0.3
LIKE_SELECTIVITY = 0.1
NOTNULL_SELECTIVITY = 0.9
#: cost of re-evaluating one pushed-down conjunct per index-NL-probed row
#: (relative to a sequentially scanned row); only charged in costed mode
RESIDUAL_EVAL_COST = 0.5


def _lazy_batch(expression, ctx):
    """Batch kernel for *expression* that compiles on first use.

    Row closures are always compiled eagerly (they surface bind errors at
    plan time and serve as the fallback), so compiling the batch kernel
    too would double the plan-time expression work — measurable on point
    queries, where planning dominates.  Deferring to the first block means
    operators that never execute, or that run in row mode, pay nothing.
    """
    compiled = None

    def kernel(columns, positions):
        nonlocal compiled
        if compiled is None:
            compiled = expression.compile_batch(ctx)
        return compiled(columns, positions)

    return kernel


class Runtime:
    """Per-statement execution environment: the visible CTE results.

    ``ctes`` maps each name to ``(column_names, source)`` where *source*
    is a :class:`MaterializedRelation` (vectorized materialization) or a
    plain row list (row mode, recursive CTEs) — ``MaterializedScan``
    accepts either.
    """

    def __init__(self, database):
        self.database = database
        self.ctes = {}  # name -> (column_names, rows or MaterializedRelation)


def split_conjuncts(expression):
    """Flatten a WHERE tree into a list of AND-ed conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, ex.And):
        conjuncts = []
        for item in expression.items:
            conjuncts.extend(split_conjuncts(item))
        return conjuncts
    return [expression]


def _through_projection(value_fns, output_key_fn):
    """Lift an output-row key function to run over the pre-projection row."""

    def key(row, _fns=tuple(value_fns), _key=output_key_fn):
        return _key(tuple(fn(row) for fn in _fns))

    return key


def safe_fingerprint(expression):
    try:
        return expression.fingerprint()
    except NotImplementedError:
        return None


class Planner:
    """Plans one statement against a database + runtime."""

    def __init__(self, database, runtime=None, params=None):
        self.database = database
        self.runtime = runtime if runtime is not None else Runtime(database)
        #: positional parameter values for this execution (bound at
        #: expression-compile time; the AST is shared and never mutated)
        self.params = params
        #: optional ExecutionStats; when set, CTE sub-plans are instrumented
        self.stats = None
        #: statistics-driven costing (REPRO_COSTED); snapshotted per plan so
        #: a knob flip mid-statement cannot mix estimation regimes
        self.costed = stats_mod.costed_enabled()
        #: validated planner option, read once per plan (not per join step)
        self._probe_cost = database.planner_option("index_probe_cost", 1.0)
        self._stats_cache = {}  # table name -> TableStats or None

    # ------------------------------------------------------------------
    # expression compilation helpers
    # ------------------------------------------------------------------
    def _ctx(self, columns):
        resolver = op.make_resolver(columns)
        return ex.CompileContext(
            resolver, self.database.functions, self._execute_subquery,
            params=self.params,
        )

    def _const_ctx(self):
        def resolver(qualifier, name):
            raise BindError(f"column {name!r} not allowed here")

        return ex.CompileContext(
            resolver, self.database.functions, self._execute_subquery,
            params=self.params,
        )

    @staticmethod
    def _batch_fn(expression, ctx):
        """Vectorized kernel for *expression*, or ``None`` when batch
        execution is off (the legacy plan path then pays nothing)."""
        if not batch_mod.enabled():
            return None
        return _lazy_batch(expression, ctx)

    def const_value(self, expression):
        """Evaluate an expression that must not reference any column."""
        return expression.compile(self._const_ctx())(None)

    def _is_const(self, expression):
        return not expression.references()

    def _execute_subquery(self, statement_ast):
        child = Planner(self.database, self.runtime, params=self.params)
        plan = child.plan_select_statement(statement_ast)
        return list(plan.rows())

    # ------------------------------------------------------------------
    # statement entry point
    # ------------------------------------------------------------------
    def plan_select_statement(self, stmt):
        for cte in stmt.ctes:
            self._materialize_cte(cte, stmt.recursive)
        plan = self.plan_query_expr(stmt.body)
        if stmt.order_by:
            plan = self._apply_order_by(plan, stmt.order_by, stmt.body)
        if stmt.limit is not None or stmt.offset is not None:
            limit = None if stmt.limit is None else int(self.const_value(stmt.limit))
            offset = (
                None if stmt.offset is None else int(self.const_value(stmt.offset))
            )
            plan = op.LimitOp(plan, limit, offset)
        return plan

    def _apply_order_by(self, plan, order_items, body):
        """Sort the final plan.

        Keys may reference output columns (aliases, positions) or — when the
        top of the plan is a plain projection — columns of the underlying
        relation that were projected away (``SELECT name ... ORDER BY id``).
        In the latter case the sort is planned beneath the projection.
        """
        columns = plan.columns
        names = [name for __, name in columns]
        project = plan if isinstance(plan, op.ProjectOp) else None

        def output_key(expression):
            """Key function over the *output* row, or None."""
            if isinstance(expression, ex.Literal) and isinstance(
                expression.value, int
            ):
                position = expression.value - 1
                if not 0 <= position < len(columns):
                    raise BindError(
                        f"ORDER BY position {expression.value} out of range"
                    )
                return lambda row, _p=position: row[_p]
            if (
                isinstance(expression, ex.ColumnRef)
                and names.count(expression.name) == 1
            ):
                position = names.index(expression.name)
                return lambda row, _p=position: row[_p]
            try:
                return expression.compile(self._ctx(columns))
            except BindError:
                return None

        key_fns = []
        child_key_indices = []
        descending = []
        for i, item in enumerate(order_items):
            fn = output_key(item.expr)
            if fn is None and project is not None:
                try:
                    fn = item.expr.compile(self._ctx(project.child.columns))
                except BindError:
                    fn = None
                else:
                    child_key_indices.append(i)
            if fn is None:
                raise BindError("cannot resolve ORDER BY expression")
            key_fns.append(fn)
            descending.append(item.descending)

        if not child_key_indices:
            return op.SortOp(plan, key_fns, descending)
        # some keys live beneath the projection: sort the child, mapping
        # output-level keys through the projection's value functions
        child_fns = []
        for i, fn in enumerate(key_fns):
            if i in child_key_indices:
                child_fns.append(fn)
            else:
                child_fns.append(_through_projection(project.value_fns, fn))
        sorted_child = op.SortOp(project.child, child_fns, descending)
        return op.ProjectOp(
            sorted_child, project.value_fns, project.columns,
            batch_fns=project.batch_fns,
        )

    # ------------------------------------------------------------------
    # CTE materialization
    # ------------------------------------------------------------------
    def _cte_references(self, query, name):
        """Does *query* reference CTE *name* in any FROM clause?"""
        target = name.lower()

        def visit_query(node):
            if isinstance(node, ast.SelectStatement):
                return visit_query(node.body)
            if isinstance(node, ast.SetOp):
                return visit_query(node.left) or visit_query(node.right)
            if isinstance(node, ast.Select):
                return any(visit_from(item) for item in node.from_items)
            return False

        def visit_from(item):
            if isinstance(item, ast.TableRef):
                return item.name.lower() == target
            if isinstance(item, ast.Join):
                return visit_from(item.left) or visit_from(item.right)
            if isinstance(item, ast.SubquerySource):
                return visit_query(item.query)
            return False

        return visit_query(query)

    def _materialize_cte(self, cte, recursive_allowed):
        name = cte.name.lower()
        if recursive_allowed and self._cte_references(cte.query, name):
            self._materialize_recursive_cte(cte)
            return
        if isinstance(cte.query, ast.SelectStatement):
            plan = self.plan_select_statement(cte.query)
        else:
            plan = self.plan_query_expr(cte.query)
        columns = cte.columns or [col_name for __, col_name in plan.columns]
        columns = [col.lower() for col in columns]
        if len(columns) != len(plan.columns):
            raise BindError(
                f"CTE {name!r} declares {len(columns)} columns but query "
                f"produces {len(plan.columns)}"
            )
        if self.stats is not None:
            from repro.obs.stats import instrument_plan

            instrument_plan(plan, self.stats)
            self.stats.cte_plans.append((name, plan))
        if batch_mod.enabled() and plan.est_rows <= 1:
            # point-query fast path: a plan-time CTE expected to yield a
            # single row (the Gremlin seed lookup) is materialized through
            # the row path — building ColumnBatch blocks and compiling
            # batch kernels costs more than the one row they would carry
            with batch_mod.row_mode():
                self.runtime.ctes[name] = (
                    columns, MaterializedRelation.from_plan(plan)
                )
            return
        # vectorized: keep the CTE body columnar so every re-scan of it is
        # zero-copy; row mode stores the classic row list
        self.runtime.ctes[name] = (columns, MaterializedRelation.from_plan(plan))

    def _materialize_recursive_cte(self, cte):
        name = cte.name.lower()
        base_terms, recursive_terms = [], []

        def collect(node):
            if isinstance(node, ast.SetOp) and node.op == "union_all":
                collect(node.left)
                collect(node.right)
            elif self._cte_references(node, name):
                recursive_terms.append(node)
            else:
                base_terms.append(node)

        collect(cte.query)
        if not recursive_terms:
            raise BindError(f"recursive CTE {name!r} has no recursive term")
        if not base_terms:
            raise BindError(f"recursive CTE {name!r} has no base term")

        all_rows = []
        seen = set()
        columns = None
        for term in base_terms:
            plan = self.plan_query_expr(term)
            if columns is None:
                columns = cte.columns or [col for __, col in plan.columns]
                columns = [col.lower() for col in columns]
            for row in plan.rows():
                key = op.hashable_row(row)
                if key not in seen:
                    seen.add(key)
                    all_rows.append(row)
        delta = list(all_rows)
        rounds = 0
        while delta:
            rounds += 1
            if rounds > MAX_RECURSION_ROUNDS:
                raise BindError(f"recursive CTE {name!r} exceeded iteration limit")
            self.runtime.ctes[name] = (columns, delta)
            new_delta = []
            for term in recursive_terms:
                plan = self.plan_query_expr(term)
                for row in plan.rows():
                    key = op.hashable_row(row)
                    if key not in seen:
                        seen.add(key)
                        new_delta.append(row)
                        all_rows.append(row)
            delta = new_delta
        self.runtime.ctes[name] = (columns, all_rows)

    # ------------------------------------------------------------------
    # query expressions
    # ------------------------------------------------------------------
    def plan_query_expr(self, node):
        if isinstance(node, ast.SetOp):
            left = self.plan_query_expr(node.left)
            right = self.plan_query_expr(node.right)
            if len(left.columns) != len(right.columns):
                raise BindError("set operation children have different arity")
            if node.op == "union_all":
                children = []
                for child in (left, right):
                    if isinstance(child, op.UnionAllOp):
                        children.extend(child.children)
                    else:
                        children.append(child)
                return op.UnionAllOp(children)
            return op.SetOpOp(node.op, left, right)
        if isinstance(node, ast.Select):
            return self.plan_select_core(node)
        raise BindError(f"cannot plan query node {type(node).__name__}")

    # ------------------------------------------------------------------
    # SELECT core
    # ------------------------------------------------------------------
    def plan_select_core(self, select):
        conjuncts = split_conjuncts(select.where)
        plan = self._plan_from_clause(select.from_items, conjuncts)
        if conjuncts:
            ctx = self._ctx(plan.columns)
            expression = ex.And(conjuncts) if len(conjuncts) > 1 else conjuncts[0]
            plan = op.FilterOp(
                plan,
                expression.compile(ctx),
                predicate_batch=self._batch_fn(expression, ctx),
            )
        plan = self._apply_projection(plan, select)
        if select.distinct:
            plan = op.DistinctOp(plan)
        return plan

    def _expand_select_items(self, select, child_columns):
        """Resolve ``*`` / ``alias.*`` into explicit expression items."""
        items = []
        for item in select.items:
            if not item.star:
                items.append(item)
                continue
            for qualifier, name in child_columns:
                if item.qualifier is not None and qualifier != item.qualifier.lower():
                    continue
                items.append(
                    ast.SelectItem(expr=ex.ColumnRef(qualifier, name), alias=name)
                )
        return items

    def _contains_aggregate(self, expression):
        for node in expression.walk():
            if isinstance(node, ex.FuncCall) and (
                node.name in ex.AGGREGATE_FUNCTIONS
            ):
                return True
        return False

    def _apply_projection(self, plan, select):
        items = self._expand_select_items(select, plan.columns)
        has_aggregate = select.group_by or any(
            self._contains_aggregate(item.expr) for item in items
        )
        if has_aggregate:
            return self._apply_aggregation(plan, select, items)
        ctx = self._ctx(plan.columns)
        value_fns = [item.expr.compile(ctx) for item in items]
        batch_fns = None
        if batch_mod.enabled():
            batch_fns = [_lazy_batch(item.expr, ctx) for item in items]
        columns = [(None, self._output_name(item, i)) for i, item in enumerate(items)]
        return op.ProjectOp(plan, value_fns, columns, batch_fns=batch_fns)

    @staticmethod
    def _output_name(item, position):
        if item.alias:
            return item.alias.lower()
        if isinstance(item.expr, ex.ColumnRef):
            return item.expr.name
        return f"col{position}"

    def _apply_aggregation(self, plan, select, items):
        child_ctx = self._ctx(plan.columns)
        vectorize = batch_mod.enabled()
        group_fns = []
        group_batch_fns = [] if vectorize else None
        group_fingerprints = []
        for group_expr in select.group_by:
            group_fns.append(group_expr.compile(child_ctx))
            if vectorize:
                group_batch_fns.append(_lazy_batch(group_expr, child_ctx))
            group_fingerprints.append(safe_fingerprint(group_expr))

        agg_specs = []  # (kind, value_fn_or_None, distinct)
        agg_batch_fns = [] if vectorize else None  # aligned with agg_specs
        agg_keys = {}  # fingerprint -> agg index, for dedup

        def rewrite(expression):
            fingerprint = safe_fingerprint(expression)
            if fingerprint is not None and fingerprint in group_fingerprints:
                position = group_fingerprints.index(fingerprint)
                return ex.ColumnRef(None, f"$grp{position}")
            if isinstance(expression, ex.FuncCall) and (
                expression.name in ex.AGGREGATE_FUNCTIONS
            ):
                kind = expression.name
                if kind == "count" and getattr(expression, "star", False):
                    kind = "count_star"
                    value_fn = None
                    value_batch_fn = None
                    key = ("count_star", False)
                else:
                    if len(expression.args) != 1:
                        raise BindError(
                            f"aggregate {kind} takes one argument"
                        )
                    arg_fp = safe_fingerprint(expression.args[0])
                    key = (kind, expression.distinct, arg_fp)
                    value_fn = expression.args[0].compile(child_ctx)
                    value_batch_fn = (
                        _lazy_batch(expression.args[0], child_ctx)
                        if vectorize
                        else None
                    )
                if key in agg_keys and key[-1] is not None:
                    position = agg_keys[key]
                else:
                    position = len(agg_specs)
                    agg_specs.append((kind, value_fn, expression.distinct))
                    if vectorize:
                        agg_batch_fns.append(value_batch_fn)
                    agg_keys[key] = position
                return ex.ColumnRef(None, f"$agg{position}")
            rebuilt = self._rebuild_with_children(expression, rewrite)
            return rebuilt

        rewritten_items = []
        for item in items:
            rewritten_items.append((rewrite(item.expr), item))
        having_rewritten = rewrite(select.having) if select.having is not None else None

        inner_columns = [(None, f"$grp{i}") for i in range(len(group_fns))] + [
            (None, f"$agg{i}") for i in range(len(agg_specs))
        ]
        agg_plan = op.AggregateOp(
            plan, group_fns, agg_specs, inner_columns,
            group_batch_fns=group_batch_fns, agg_batch_fns=agg_batch_fns,
        )
        inner_ctx = self._ctx(inner_columns)
        if having_rewritten is not None:
            agg_plan = op.FilterOp(
                agg_plan,
                having_rewritten.compile(inner_ctx),
                predicate_batch=self._batch_fn(having_rewritten, inner_ctx),
            )
            inner_ctx = self._ctx(inner_columns)
        value_fns = [expr.compile(inner_ctx) for expr, __ in rewritten_items]
        batch_fns = None
        if vectorize:
            batch_fns = [
                _lazy_batch(expr, inner_ctx) for expr, __ in rewritten_items
            ]
        out_columns = [
            (None, self._output_name(item, i))
            for i, (__, item) in enumerate(rewritten_items)
        ]
        return op.ProjectOp(agg_plan, value_fns, out_columns, batch_fns=batch_fns)

    def _rebuild_with_children(self, expression, transform):
        """Return a copy of *expression* with *transform* applied to child
        expressions.  Copy-on-write (never mutate): the AST may live in the
        prepared-statement cache and be re-planned for later executions."""
        clone = None

        def target():
            nonlocal clone
            if clone is None:
                clone = copy.copy(expression)
            return clone

        for attr in ("left", "right", "operand", "pattern", "otherwise"):
            child = getattr(expression, attr, None)
            if isinstance(child, ex.Expression):
                setattr(target(), attr, transform(child))
        for attr in ("items", "args"):
            children = getattr(expression, attr, None)
            if isinstance(children, list):
                setattr(target(), attr, [
                    transform(child) if isinstance(child, ex.Expression)
                    else child
                    for child in children
                ])
        whens = getattr(expression, "whens", None)
        if isinstance(whens, list):
            target().whens = [
                (transform(cond), transform(result))
                for cond, result in whens
            ]
        return clone if clone is not None else expression

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------
    def _plan_from_clause(self, from_items, conjuncts):
        if not from_items:
            return op.MaterializedScan([()], [])
        leaves = []
        for item in from_items:
            self._add_from_item(item, leaves, conjuncts)
        return self._join_leaves(leaves, conjuncts)

    def _add_from_item(self, item, leaves, conjuncts):
        if isinstance(item, ast.TableRef):
            leaves.append(self._table_leaf(item))
        elif isinstance(item, ast.SubquerySource):
            leaves.append(self._subquery_leaf(item))
        elif isinstance(item, ast.Join):
            if item.kind in ("inner", "cross"):
                self._add_from_item(item.left, leaves, conjuncts)
                self._add_from_item(item.right, leaves, conjuncts)
                if item.condition is not None:
                    conjuncts.extend(split_conjuncts(item.condition))
            else:  # left outer join: plan both sides as units
                left_leaves = []
                self._add_from_item(item.left, left_leaves, conjuncts)
                left_plan = self._join_leaves(left_leaves, conjuncts)
                right_plan = self._plan_left_join(left_plan, item)
                leaves.append(right_plan)
        elif isinstance(item, ast.UnnestValues):
            if not leaves:
                raise BindError("TABLE(VALUES ...) needs a preceding FROM item")
            combined = self._join_leaves(leaves, conjuncts)
            leaves.clear()
            leaves.append(self._apply_unnest(combined, item))
        else:
            raise BindError(f"unsupported FROM item {type(item).__name__}")

    def _table_leaf(self, ref):
        name = ref.name.lower()
        alias = (ref.alias or ref.name).lower()
        if name in self.runtime.ctes:
            columns, rows = self.runtime.ctes[name]
            return op.MaterializedScan(rows, [(alias, col) for col in columns])
        table = self.database.catalog.get_table(name)
        scan = op.SeqScan(table, alias)
        self._attach_table_ndv(scan, table)
        return scan

    # ------------------------------------------------------------------
    # statistics access
    # ------------------------------------------------------------------
    def _table_stats(self, table):
        """ANALYZE statistics for *table*, or ``None`` (absent, invalidated
        by a schema change, or costing disabled)."""
        if not self.costed:
            return None
        name = table.name
        if name in self._stats_cache:
            return self._stats_cache[name]
        registry = getattr(self.database, "statistics", None)
        entry = None
        if registry is not None:
            entry = registry.get(name, self.database.schema_epoch)
        self._stats_cache[name] = entry
        return entry

    def _attach_table_ndv(self, plan, table):
        """Stamp the cost interface's NDV map onto a base-table access."""
        tstats = self._table_stats(table)
        if tstats is not None:
            plan.stats_ndv = tstats.ndv_map()

    def _subquery_leaf(self, source):
        child = Planner(self.database, self.runtime, params=self.params)
        plan = child.plan_query_expr(source.query)
        alias = source.alias.lower()
        columns = [(alias, name) for __, name in plan.columns]
        return op.MaterializedScan(MaterializedRelation.from_plan(plan), columns)

    def _apply_unnest(self, child, unnest):
        ctx = self._ctx(child.columns)
        vectorize = batch_mod.enabled()
        width = len(unnest.columns)
        rows_of_fns = []
        rows_of_batch_fns = [] if vectorize else None
        for row_exprs in unnest.rows:
            if len(row_exprs) != width:
                raise BindError(
                    f"VALUES row has {len(row_exprs)} expressions, alias declares "
                    f"{width} columns"
                )
            rows_of_fns.append([expr.compile(ctx) for expr in row_exprs])
            if vectorize:
                rows_of_batch_fns.append(
                    [_lazy_batch(expr, ctx) for expr in row_exprs]
                )
        alias = unnest.alias.lower()
        columns = [(alias, col.lower()) for col in unnest.columns]
        return op.LateralUnnestOp(
            child, rows_of_fns, columns, rows_of_batch_fns=rows_of_batch_fns
        )

    def _plan_left_join(self, left_plan, join):
        if isinstance(join.right, ast.TableRef):
            right_leaf = self._table_leaf(join.right)
        elif isinstance(join.right, ast.SubquerySource):
            right_leaf = self._subquery_leaf(join.right)
        else:
            raise BindError("LEFT JOIN right side must be a table or subquery")
        condition_conjuncts = split_conjuncts(join.condition)
        left_cols = set(left_plan.columns)
        right_cols = set(right_leaf.columns)
        equi_pairs, residual = self._extract_equi_pairs(
            condition_conjuncts, left_cols, right_cols
        )
        combined_columns = list(left_plan.columns) + list(right_leaf.columns)
        residual_fn = None
        if residual:
            ctx = self._ctx(combined_columns)
            residual_fn = ex.And(residual).compile(ctx) if len(residual) > 1 else (
                residual[0].compile(ctx)
            )
        if equi_pairs:
            left_ctx = self._ctx(left_plan.columns)
            left_key_fns = [pair[0].compile(left_ctx) for pair in equi_pairs]
            left_key_batch_fns = None
            if batch_mod.enabled():
                left_key_batch_fns = [
                    _lazy_batch(pair[0], left_ctx) for pair in equi_pairs
                ]
            # prefer an index nested-loop when the right side is a base table
            # with an index on exactly the join key
            if isinstance(right_leaf, op.SeqScan) and len(equi_pairs) == 1:
                fingerprint = equi_pairs[0][1].fingerprint()
                index = right_leaf.table.find_index(fingerprint)
                if index is not None:
                    return op.IndexNLJoinOp(
                        left_plan,
                        right_leaf.table,
                        right_leaf.qualifier,
                        index,
                        left_key_fns,
                        residual=residual_fn,
                        kind="left",
                        outer_key_batch_fns=left_key_batch_fns,
                    )
            right_ctx = self._ctx(right_leaf.columns)
            right_key_fns = [pair[1].compile(right_ctx) for pair in equi_pairs]
            right_key_batch_fns = None
            if batch_mod.enabled():
                right_key_batch_fns = [
                    _lazy_batch(pair[1], right_ctx) for pair in equi_pairs
                ]
            return op.HashJoinOp(
                left_plan, right_leaf, left_key_fns, right_key_fns, "left",
                residual_fn,
                left_key_batch_fns=left_key_batch_fns,
                right_key_batch_fns=right_key_batch_fns,
            )
        condition_fn = None
        if condition_conjuncts:
            ctx = self._ctx(combined_columns)
            condition_fn = ex.And(condition_conjuncts).compile(ctx)
        return op.NestedLoopJoinOp(left_plan, right_leaf, condition_fn, "left")

    def _extract_equi_pairs(self, conjuncts, left_cols, right_cols):
        """Split conjuncts into (left_expr, right_expr) equi pairs + residual."""
        pairs = []
        residual = []
        for conjunct in conjuncts:
            pair = None
            if isinstance(conjunct, ex.Comparison) and conjunct.op == "=":
                left_refs = self._column_set(conjunct.left)
                right_refs = self._column_set(conjunct.right)
                if left_refs and right_refs:
                    if left_refs <= left_cols and right_refs <= right_cols:
                        pair = (conjunct.left, conjunct.right)
                    elif left_refs <= right_cols and right_refs <= left_cols:
                        pair = (conjunct.right, conjunct.left)
            if pair is not None:
                pairs.append(pair)
            else:
                residual.append(conjunct)
        return pairs, residual

    @staticmethod
    def _column_set(expression):
        """References of *expression* as a set (qualifier may be None)."""
        return set(expression.references())

    def _refs_resolvable(self, expression, columns):
        """Can every reference in *expression* be resolved against *columns*?"""
        resolver = op.make_resolver(columns)
        for qualifier, name in expression.references():
            try:
                resolver(qualifier, name)
            except BindError:
                return False
        return True

    # ------------------------------------------------------------------
    # join ordering
    # ------------------------------------------------------------------
    def _join_leaves(self, leaves, conjuncts):
        if not leaves:
            return op.MaterializedScan([()], [])
        # push single-leaf conjuncts into access paths
        prepared = []
        for leaf in leaves:
            local = [
                conjunct
                for conjunct in conjuncts
                if conjunct.references()
                and self._refs_resolvable(conjunct, leaf.columns)
            ]
            for conjunct in local:
                conjuncts.remove(conjunct)
            prepared.append(self._apply_access_path(leaf, local))
        if len(prepared) == 1:
            return prepared[0]

        # cost-based ordering only engages when ANALYZE has run on at least
        # one participating base table — without statistics the greedy
        # heuristic below is byte-identical to the pre-statistics planner
        use_cost = self.costed and any(
            getattr(leaf, "stats_ndv", None) for leaf in prepared
        )
        remaining = list(prepared)
        remaining.sort(key=lambda leaf: leaf.est_rows)
        if use_cost and len(remaining) > 1:
            # the smallest leaf is not always the right driver: putting a
            # base table on the outer side forfeits probing its join index
            # (a MaterializedScan can't be probed), so the starting leaf is
            # chosen by costing every ordered first join
            current = self._cheapest_driver(remaining, conjuncts)
            remaining.remove(current)
        else:
            current = remaining.pop(0)
        while remaining:
            best = None
            for candidate in remaining:
                pairs = self._pairs_between(current, candidate, conjuncts)
                connected = bool(pairs)
                est_join = None
                if use_cost:
                    est_join = self._estimate_join_rows(
                        current, candidate, pairs
                    )
                    # cheapest operator first, then cheapest output;
                    # leaf cardinality tie-breaks
                    score = (
                        0 if connected else 1,
                        self._join_op_cost(current, candidate, pairs),
                        est_join, candidate.est_rows,
                    )
                else:
                    score = (0 if connected else 1, candidate.est_rows)
                if best is None or score < best[0]:
                    best = (score, candidate, est_join if connected else None)
            __, candidate, est_hint = best
            remaining.remove(candidate)
            current = self._join_pair(
                current, candidate, conjuncts, est_hint=est_hint
            )
        return current

    def _pairs_between(self, left, right, conjuncts):
        """Equi-join pairs between two plans (read-only; conjuncts kept)."""
        combined_cols = set(left.columns) | set(right.columns)
        usable = [
            conjunct
            for conjunct in conjuncts
            if self._refs_resolvable(conjunct, list(combined_cols))
        ]
        pairs, __ = self._extract_equi_pairs(
            usable, set(left.columns), set(right.columns)
        )
        return pairs

    def _cheapest_driver(self, leaves, conjuncts):
        """The outer side of the cheapest first join over *leaves*."""
        best = None
        for outer in leaves:
            for inner in leaves:
                if inner is outer:
                    continue
                pairs = self._pairs_between(outer, inner, conjuncts)
                score = (
                    0 if pairs else 1,
                    self._join_op_cost(outer, inner, pairs),
                    self._estimate_join_rows(outer, inner, pairs),
                    outer.est_rows,
                )
                if best is None or score < best[0]:
                    best = (score, outer)
        return best[1]

    def _join_op_cost(self, outer, inner, pairs):
        """Estimated operator cost of joining *outer* to *inner*.

        Mirrors the regime formulas in :meth:`_join_pair`: an index nested
        loop pays one random probe per outer row, a hash join pays building
        the inner plus streaming the outer.  A disconnected pair costs the
        full cross product, keeping cartesian joins last.
        """
        outer_rows = max(outer.records_output(), 1)
        inner_rows = max(inner.records_output(), 1)
        if not pairs:
            return outer_rows * inner_rows
        cost = inner_rows + outer_rows * 0.5
        if len(pairs) == 1:
            table = self._probe_target(inner)
            if table is not None:
                try:
                    fingerprint = pairs[0][1].fingerprint()
                except NotImplementedError:
                    fingerprint = None
                if fingerprint is not None and (
                    table.find_index(fingerprint) is not None
                ):
                    # probing bypasses the inner's access path, so its
                    # pushed conjuncts are re-evaluated per probed row
                    probe = self._probe_cost + RESIDUAL_EVAL_COST * len(
                        getattr(inner, "pushed_conjuncts", ()) or ()
                    )
                    cost = min(cost, outer_rows * probe)
        return cost

    @staticmethod
    def _probe_target(plan):
        """The base table *plan* could be index-probed into, or ``None``.

        Read-only twin of the detection in :meth:`_join_pair` (which also
        mutates the scan to record its pushed conjuncts).
        """
        table = getattr(plan, "base_table", None)
        if table is not None:
            return table
        if isinstance(plan, op.SeqScan) and plan.predicate is None:
            return plan.table
        return None

    def _estimate_join_rows(self, left, right, pairs):
        """System-R style equi-join cardinality: ``|L||R| / Π max(ndv)``.

        Each equi-pair divides the cross product by the larger side's
        distinct count for the join key (the smaller value set matches into
        the larger).  A pair whose NDV is unknown on both sides falls back
        to dividing by the larger input — the classic primary-key guess.
        """
        left_rows = max(left.records_output(), 1)
        right_rows = max(right.records_output(), 1)
        estimate = left_rows * right_rows
        if not pairs:
            return estimate
        for left_expr, right_expr in pairs:
            left_ndv = left.distinct_values(safe_fingerprint(left_expr))
            right_ndv = right.distinct_values(safe_fingerprint(right_expr))
            known = [ndv for ndv in (left_ndv, right_ndv) if ndv]
            denominator = max(known) if known else max(left_rows, right_rows)
            estimate /= max(denominator, 1)
        return max(1, int(estimate))

    def _join_pair(self, current, candidate, conjuncts, est_hint=None):
        combined_columns = list(current.columns) + list(candidate.columns)
        usable = [
            conjunct
            for conjunct in conjuncts
            if self._refs_resolvable(conjunct, combined_columns)
        ]
        for conjunct in usable:
            conjuncts.remove(conjunct)
        pairs, residual = self._extract_equi_pairs(
            usable, set(current.columns), set(candidate.columns)
        )
        residual_fn = None
        if residual:
            ctx = self._ctx(combined_columns)
            residual_fn = ex.And(residual).compile(ctx) if len(residual) > 1 else (
                residual[0].compile(ctx)
            )
        if not pairs:
            return op.NestedLoopJoinOp(current, candidate, residual_fn, "inner")
        left_ctx = self._ctx(current.columns)
        outer_key_fns = [pair[0].compile(left_ctx) for pair in pairs]
        outer_key_batch_fns = None
        if batch_mod.enabled():
            outer_key_batch_fns = [
                _lazy_batch(pair[0], left_ctx) for pair in pairs
            ]
        # index nested loop into a base table when probing is cheap; the
        # candidate's pushed-down conjuncts (recorded by _apply_access_path)
        # are re-applied as join residuals since the index bypasses its
        # access path
        base_table = getattr(candidate, "base_table", None)
        if base_table is None and isinstance(candidate, op.SeqScan) and (
            candidate.predicate is None
        ):
            base_table = candidate.table
            candidate.base_qualifier = candidate.qualifier
            candidate.pushed_conjuncts = []
        if base_table is not None and len(pairs) == 1:
            try:
                fingerprint = pairs[0][1].fingerprint()
            except NotImplementedError:
                fingerprint = None
            index = (
                base_table.find_index(fingerprint)
                if fingerprint is not None
                else None
            )
            # regime selection: an index nested loop costs one random probe
            # per outer row; a hash join costs building + scanning both
            # inputs sequentially.  `index_probe_cost` expresses how much a
            # random probe costs relative to a sequentially scanned row
            # (≈1 in RAM, orders of magnitude more on disk).  With
            # statistics (est_hint set) the nested loop is additionally
            # charged for re-evaluating the inner's pushed-down conjuncts
            # per probed row — probing bypasses the access path that
            # answered them, so an index-served filter becomes a residual.
            probe_cost = self._probe_cost
            if est_hint is not None:
                probe_cost += (
                    RESIDUAL_EVAL_COST * len(candidate.pushed_conjuncts)
                )
            index_join_cost = current.est_rows * probe_cost
            hash_join_cost = candidate.est_rows + current.est_rows * 0.5
            if index is not None and (
                index_join_cost <= hash_join_cost
                or current.est_rows <= 1000 * min(1.0, 1.0 / probe_cost)
            ):
                inner_columns = [
                    (candidate.base_qualifier, name)
                    for name in base_table.schema.column_names
                ]
                all_residuals = list(residual) + list(candidate.pushed_conjuncts)
                combined_fn = None
                if all_residuals:
                    ctx = self._ctx(list(current.columns) + inner_columns)
                    combined_fn = (
                        ex.And(all_residuals).compile(ctx)
                        if len(all_residuals) > 1
                        else all_residuals[0].compile(ctx)
                    )
                join_op = op.IndexNLJoinOp(
                    current,
                    base_table,
                    candidate.base_qualifier,
                    index,
                    outer_key_fns,
                    residual=combined_fn,
                    est_rows=(
                        est_hint if est_hint is not None
                        else max(current.est_rows, candidate.est_rows)
                    ),
                    outer_key_batch_fns=outer_key_batch_fns,
                )
                # inner-table NDVs for downstream join-cardinality questions
                # (the inner side is a raw table, not a child operator)
                self._attach_table_ndv(join_op, base_table)
                return join_op
        right_ctx = self._ctx(candidate.columns)
        inner_key_fns = [pair[1].compile(right_ctx) for pair in pairs]
        inner_key_batch_fns = None
        if batch_mod.enabled():
            inner_key_batch_fns = [
                _lazy_batch(pair[1], right_ctx) for pair in pairs
            ]
        est = (
            est_hint if est_hint is not None
            else max(current.est_rows, candidate.est_rows)
        )
        if candidate.est_rows <= current.est_rows:
            return op.HashJoinOp(
                current, candidate, outer_key_fns, inner_key_fns, "inner",
                residual_fn, est,
                left_key_batch_fns=outer_key_batch_fns,
                right_key_batch_fns=inner_key_batch_fns,
            )
        # build on the smaller (current) side by swapping children
        swapped = op.HashJoinOp(
            candidate, current, inner_key_fns, outer_key_fns, "inner", None,
            est,
            left_key_batch_fns=inner_key_batch_fns,
            right_key_batch_fns=outer_key_batch_fns,
        )
        if residual_fn is None:
            return swapped
        ctx = self._ctx(swapped.columns)
        # residual was compiled against [current, candidate] order; recompile
        residual_conjuncts = residual
        predicate = ex.And(residual_conjuncts).compile(ctx) if len(
            residual_conjuncts
        ) > 1 else residual_conjuncts[0].compile(ctx)
        return op.FilterOp(swapped, predicate, est)

    # ------------------------------------------------------------------
    # access-path selection for one leaf
    # ------------------------------------------------------------------
    def _apply_access_path(self, leaf, local_conjuncts):
        if not local_conjuncts:
            return leaf
        if not isinstance(leaf, op.SeqScan):
            ctx = self._ctx(leaf.columns)
            predicate = self._conjunction_fn(local_conjuncts, ctx)
            return op.FilterOp(
                leaf, predicate, max(1, leaf.est_rows // 3),
                predicate_batch=self._conjunction_batch_fn(local_conjuncts, ctx),
            )

        table = leaf.table
        qualifier = leaf.qualifier
        chosen = None  # (operator_factory, consumed_conjunct, est_rows)

        for conjunct in local_conjuncts:
            access = self._match_index_access(table, qualifier, conjunct)
            if access is None:
                continue
            if chosen is None or access[1] < chosen[1]:
                chosen = (access[0], access[1], conjunct)
        if chosen is None:
            ctx = self._ctx(leaf.columns)
            predicate = self._conjunction_fn(local_conjuncts, ctx)
            est = self._estimate_filtered(
                table.live_rows, local_conjuncts, self._table_stats(table)
            )
            scan = op.SeqScan(
                table, qualifier, predicate, est,
                predicate_batch=self._conjunction_batch_fn(local_conjuncts, ctx),
            )
            self._mark_base(scan, table, qualifier, local_conjuncts)
            return scan
        factory, est, consumed = chosen
        rest = [conjunct for conjunct in local_conjuncts if conjunct is not consumed]
        predicate = None
        predicate_batch = None
        if rest:
            ctx = self._ctx(leaf.columns)
            predicate = self._conjunction_fn(rest, ctx)
            predicate_batch = self._conjunction_batch_fn(rest, ctx)
            est = self._estimate_filtered(est, rest, self._table_stats(table))
        scan = factory(predicate, max(1, int(est)))
        # only attach the vectorized residual when the factory installed the
        # row predicate unchanged (the prefix-LIKE factory wraps it with an
        # extra row closure the batch kernel would not include)
        if predicate_batch is not None and (
            getattr(scan, "predicate", None) is predicate
        ):
            scan.predicate_batch = predicate_batch
        self._mark_base(scan, table, qualifier, local_conjuncts)
        return scan

    def _mark_base(self, scan, table, qualifier, pushed_conjuncts):
        """Record pushdown provenance so joins can re-derive residuals."""
        scan.base_table = table
        scan.base_qualifier = qualifier
        scan.pushed_conjuncts = list(pushed_conjuncts)
        self._attach_table_ndv(scan, table)

    def _conjunction_fn(self, conjuncts, ctx):
        if len(conjuncts) == 1:
            return conjuncts[0].compile(ctx)
        return ex.And(list(conjuncts)).compile(ctx)

    def _conjunction_batch_fn(self, conjuncts, ctx):
        """Vectorized counterpart of :meth:`_conjunction_fn` (``None`` when
        batch execution is off)."""
        if not batch_mod.enabled():
            return None
        if len(conjuncts) == 1:
            return _lazy_batch(conjuncts[0], ctx)
        return _lazy_batch(ex.And(list(conjuncts)), ctx)

    def _estimate_filtered(self, base_rows, conjuncts, tstats=None):
        estimate = base_rows
        for conjunct in conjuncts:
            estimate *= self._conjunct_selectivity(conjunct, tstats)
        return max(1, int(estimate))

    def _conjunct_selectivity(self, conjunct, tstats):
        """Selectivity of one conjunct: histogram/MCV answer when ANALYZE
        statistics cover the referenced expression, the classic constants
        otherwise (the exact pre-statistics behavior)."""
        if tstats is not None:
            selectivity = self._stats_selectivity(conjunct, tstats)
            if selectivity is not None:
                return selectivity
        if isinstance(conjunct, ex.Comparison) and conjunct.op == "=":
            return EQ_FALLBACK_SELECTIVITY
        if isinstance(conjunct, ex.Comparison):
            return RANGE_SELECTIVITY
        if isinstance(conjunct, ex.Like):
            return LIKE_SELECTIVITY
        if isinstance(conjunct, ex.IsNull) and conjunct.negated:
            return NOTNULL_SELECTIVITY
        return 0.5

    def _stats_selectivity(self, conjunct, tstats):
        """Answer *conjunct* from column statistics, or ``None`` when they
        cannot (no matching column stats, non-constant comparison, ...)."""
        if isinstance(conjunct, ex.Comparison):
            sides = [
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ]
            for key_side, value_side in sides:
                if not self._is_const(value_side):
                    continue
                if not key_side.references():
                    continue
                column = tstats.column(safe_fingerprint(key_side))
                if column is None:
                    continue
                value = self.const_value(value_side)
                operator = conjunct.op
                if key_side is conjunct.right and operator in (
                    "<", "<=", ">", ">=",
                ):
                    operator = {
                        "<": ">", "<=": ">=", ">": "<", ">=": "<=",
                    }[operator]
                if operator == "=":
                    return column.eq_selectivity(value)
                if operator in ("<>", "!="):
                    return column.ne_selectivity(value)
                if operator in ("<", "<="):
                    return column.range_selectivity(
                        None, value, high_inclusive=operator == "<="
                    )
                if operator in (">", ">="):
                    return column.range_selectivity(
                        value, None, low_inclusive=operator == ">="
                    )
                return None
            return None
        if isinstance(conjunct, ex.InList) and not conjunct.negated:
            if not all(self._is_const(item) for item in conjunct.items):
                return None
            column = tstats.column(safe_fingerprint(conjunct.operand))
            if column is None:
                return None
            return column.in_list_selectivity(
                [self.const_value(item) for item in conjunct.items]
            )
        if isinstance(conjunct, ex.Like) and not conjunct.negated:
            if not isinstance(conjunct.pattern, ex.Literal):
                return None
            pattern = conjunct.pattern.value
            if not isinstance(pattern, str) or not pattern:
                return None
            prefix_end = min(
                (pattern.index(ch) for ch in "%_" if ch in pattern),
                default=len(pattern),
            )
            prefix = pattern[:prefix_end]
            if not prefix:
                return None
            column = tstats.column(safe_fingerprint(conjunct.operand))
            if column is None:
                return None
            return column.like_prefix_selectivity(prefix)
        if isinstance(conjunct, ex.IsNull):
            column = tstats.column(safe_fingerprint(conjunct.operand))
            if column is None:
                return None
            if conjunct.negated:
                return column.not_null_selectivity()
            return column.null_selectivity()
        return None

    def _index_access_est(self, table, conjunct, fallback_est):
        """Index-access row estimate: statistics-based when available."""
        tstats = self._table_stats(table)
        if tstats is not None:
            selectivity = self._stats_selectivity(conjunct, tstats)
            if selectivity is not None:
                return max(1, int(table.live_rows * selectivity))
        return fallback_est

    def _match_index_access(self, table, qualifier, conjunct):
        """Try to satisfy *conjunct* with an index; returns (factory, est)."""
        if isinstance(conjunct, ex.Comparison):
            return self._match_comparison_index(table, qualifier, conjunct)
        if isinstance(conjunct, ex.IsNull) and conjunct.negated:
            index = table.find_index(conjunct.operand.fingerprint(), kind="sorted")
            if index is None:
                return None
            est = self._index_access_est(
                table, conjunct,
                max(1, int(table.live_rows * NOTNULL_SELECTIVITY)),
            )

            def factory(predicate, est_rows, _index=index):
                return op.IndexRangeScan(
                    table, qualifier, _index, None, None, True, True,
                    predicate, est_rows,
                )

            return factory, est
        if isinstance(conjunct, ex.Like) and not conjunct.negated:
            if not isinstance(conjunct.pattern, ex.Literal):
                return None
            pattern = conjunct.pattern.value
            if not isinstance(pattern, str) or not pattern:
                return None
            prefix_end = min(
                (pattern.index(ch) for ch in "%_" if ch in pattern),
                default=len(pattern),
            )
            prefix = pattern[:prefix_end]
            if not prefix:
                return None
            index = table.find_index(conjunct.operand.fingerprint(), kind="sorted")
            if index is None:
                return None
            est = self._index_access_est(
                table, conjunct,
                max(1, int(table.live_rows * LIKE_SELECTIVITY)),
            )
            high = prefix + "￿"
            full_predicate_needed = prefix != pattern

            def factory(predicate, est_rows, _index=index, _conjunct=conjunct):
                combined = predicate
                if full_predicate_needed:
                    ctx = self._ctx(
                        [(qualifier, name) for name in table.schema.column_names]
                    )
                    like_fn = _conjunct.compile(ctx)
                    if predicate is None:
                        combined = like_fn
                    else:
                        previous = predicate
                        combined = lambda row: like_fn(row) and previous(row)
                return op.IndexRangeScan(
                    table, qualifier, _index, prefix, high, True, True,
                    combined, est_rows,
                )

            return factory, est
        if isinstance(conjunct, ex.InList) and not conjunct.negated:
            # any constant item works (literals and bound parameters alike)
            if not all(self._is_const(item) for item in conjunct.items):
                return None
            index = table.find_index(conjunct.operand.fingerprint())
            if index is None:
                return None
            keys = [self.const_value(item) for item in conjunct.items]
            ndv = max(self._index_ndv(index), 1)
            est = self._index_access_est(
                table, conjunct, max(1, len(keys) * table.live_rows // ndv)
            )

            def factory(predicate, est_rows, _index=index, _keys=keys):
                return op.IndexEqScan(
                    table, qualifier, _index, _keys, predicate, est_rows
                )

            return factory, est
        return None

    def _match_comparison_index(self, table, qualifier, conjunct):
        sides = [
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ]
        for key_side, value_side in sides:
            if not self._is_const(value_side):
                continue
            if not key_side.references():
                continue
            try:
                fingerprint = key_side.fingerprint()
            except NotImplementedError:
                continue
            if conjunct.op == "=":
                index = table.find_index(fingerprint)
                if index is None:
                    continue
                key = self.const_value(value_side)
                ndv = max(self._index_ndv(index), 1)
                est = self._index_access_est(
                    table, conjunct, max(1, table.live_rows // ndv)
                )

                def factory(predicate, est_rows, _index=index, _key=key):
                    return op.IndexEqScan(
                        table, qualifier, _index, [_key], predicate, est_rows
                    )

                return factory, est
            if conjunct.op in ("<", "<=", ">", ">="):
                index = table.find_index(fingerprint, kind="sorted")
                if index is None:
                    continue
                bound = self.const_value(value_side)
                # normalize so the key side is on the left
                operator = conjunct.op
                if key_side is conjunct.right:
                    operator = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[operator]
                low = high = None
                low_inc = high_inc = True
                if operator in ("<", "<="):
                    high = bound
                    high_inc = operator == "<="
                else:
                    low = bound
                    low_inc = operator == ">="
                est = self._index_access_est(
                    table, conjunct,
                    max(1, int(table.live_rows * RANGE_SELECTIVITY)),
                )

                def factory(
                    predicate, est_rows, _index=index, _low=low, _high=high,
                    _li=low_inc, _hi=high_inc,
                ):
                    return op.IndexRangeScan(
                        table, qualifier, _index, _low, _high, _li, _hi,
                        predicate, est_rows,
                    )

                return factory, est
        return None

    @staticmethod
    def _index_ndv(index):
        try:
            return index.distinct_keys()
        except AttributeError:
            return DEFAULT_NDV
