"""Table-level reader/writer locks.

The engine uses strict two-phase locking at table granularity: statements in
autocommit mode lock for their own duration; statements inside an explicit
transaction hold locks until commit/rollback.  Lock acquisition is globally
ordered by table name, which makes deadlock impossible for single-statement
lock sets and for transactions that pre-declare their tables.
"""

from __future__ import annotations

import os
import threading
from time import perf_counter

from repro.obs.metrics import ENGINE_METRICS
from repro.relational.errors import LockTimeoutError

# lock contention counters (only touched when ENGINE_METRICS is enabled)
_WAIT_SECONDS = ENGINE_METRICS.counter("lock.wait_seconds")
_ACQUISITIONS = ENGINE_METRICS.counter("lock.acquisitions")
_TIMEOUTS = ENGINE_METRICS.counter("lock.timeouts")

#: default lock-wait budget when neither the constructor nor the
#: environment says otherwise, in seconds
DEFAULT_LOCK_TIMEOUT_S = 30.0


def resolve_lock_timeout(explicit=None):
    """Lock-wait timeout in seconds.

    ``explicit`` (seconds) wins when given; otherwise the
    ``REPRO_LOCK_TIMEOUT_MS`` environment variable decides (milliseconds),
    falling back to :data:`DEFAULT_LOCK_TIMEOUT_S`.
    """
    if explicit is not None:
        return max(0.0, float(explicit))
    raw = os.environ.get("REPRO_LOCK_TIMEOUT_MS", "")
    try:
        return max(0.0, float(raw)) / 1000.0 if raw.strip() \
            else DEFAULT_LOCK_TIMEOUT_S
    except ValueError:
        return DEFAULT_LOCK_TIMEOUT_S


class ReadWriteLock:
    """A classic reader/writer lock with writer preference."""

    def __init__(self, name=""):
        self.name = name
        self._condition = threading.Condition()
        self._readers = 0  # guarded-by: _condition
        self._writer = False  # guarded-by: _condition
        self._waiting_writers = 0  # guarded-by: _condition

    def acquire_read(self, timeout=None):
        with self._condition:
            started = perf_counter() if ENGINE_METRICS.enabled else None
            ok = self._condition.wait_for(
                lambda: not self._writer and self._waiting_writers == 0,
                timeout=timeout,
            )
            if started is not None:
                _WAIT_SECONDS.inc(perf_counter() - started)
                _ACQUISITIONS.inc()
            if not ok:
                if started is not None:
                    _TIMEOUTS.inc()
                raise LockTimeoutError(f"read lock timeout on {self.name!r}")
            self._readers += 1

    def release_read(self):
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self, timeout=None):
        with self._condition:
            self._waiting_writers += 1
            started = perf_counter() if ENGINE_METRICS.enabled else None
            try:
                ok = self._condition.wait_for(
                    lambda: not self._writer and self._readers == 0,
                    timeout=timeout,
                )
                if started is not None:
                    _WAIT_SECONDS.inc(perf_counter() - started)
                    _ACQUISITIONS.inc()
                if not ok:
                    if started is not None:
                        _TIMEOUTS.inc()
                    raise LockTimeoutError(f"write lock timeout on {self.name!r}")
                self._writer = True
            finally:
                self._waiting_writers -= 1

    def release_write(self):
        with self._condition:
            self._writer = False
            self._condition.notify_all()


class LockManager:
    """Owns one ReadWriteLock per table plus a catalog lock.

    :param timeout: lock-wait budget in seconds; ``None`` resolves from
        the ``REPRO_LOCK_TIMEOUT_MS`` environment variable (see
        :func:`resolve_lock_timeout`).
    """

    def __init__(self, timeout=None):
        self.timeout = resolve_lock_timeout(timeout)
        self._guard = threading.Lock()
        self._locks: dict[str, ReadWriteLock] = {}  # guarded-by: _guard
        self._local = threading.local()
        self.catalog_lock = ReadWriteLock("<catalog>")

    def cap(self, seconds):
        """``with locks.cap(s):`` — bound this thread's lock waits to *s*.

        Used by the serving layer's statement timeouts: a session with a
        1-second statement budget must not sit in a 30-second lock queue.
        The tighter of the cap and the manager timeout wins; ``None`` is a
        no-op context.
        """
        manager = self

        class _Capped:
            def __enter__(self):
                self.previous = getattr(manager._local, "cap", None)
                manager._local.cap = seconds
                return manager

            def __exit__(self, exc_type, exc, tb):
                manager._local.cap = self.previous
                return False

        return _Capped()

    def effective_timeout(self):
        """The manager timeout, tightened by any per-thread cap."""
        cap = getattr(self._local, "cap", None)
        if cap is None:
            return self.timeout
        return min(self.timeout, cap)

    def lock_for(self, table_name):
        with self._guard:
            lock = self._locks.get(table_name)
            if lock is None:
                lock = self._locks[table_name] = ReadWriteLock(table_name)
            return lock

    def acquire(self, read_tables, write_tables):
        """Acquire locks for a statement; returns an opaque release token.

        Write locks subsume read locks on the same table.  Locks are taken in
        global name order to avoid deadlock.
        """
        writes = {name.lower() for name in write_tables}
        reads = {name.lower() for name in read_tables} - writes
        plan = sorted(
            [(name, "w") for name in writes] + [(name, "r") for name in reads]
        )
        timeout = self.effective_timeout()
        acquired = []
        try:
            for name, mode in plan:
                lock = self.lock_for(name)
                if mode == "w":
                    lock.acquire_write(timeout)
                else:
                    lock.acquire_read(timeout)
                acquired.append((lock, mode))
        except Exception:
            self.release(acquired)
            raise
        return acquired

    @staticmethod
    def release(token):
        for lock, mode in reversed(token):
            if mode == "w":
                lock.release_write()
            else:
                lock.release_read()
