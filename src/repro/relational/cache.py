"""Bounded LRU caches for compiled queries.

Two caches in the engine are built on :class:`LRUCache`:

* the **prepared-statement cache** in :class:`repro.relational.Database`
  (normalized SQL text -> parsed AST + lock sets), and
* the **translation cache** in :class:`repro.core.SQLGraphStore`
  (Gremlin template key -> parameterized SQL + binding recipe).

Entries are stamped with the database's *schema epoch* at insertion time.
Any DDL (``CREATE TABLE``, ``CREATE INDEX``, ``DROP TABLE`` — and therefore
``create_attribute_index`` and ``reorganize()``, which go through DDL) bumps
the epoch, so a lookup that finds an entry from an older epoch drops it and
reports a miss.  This keeps cached plans honest without the caches having to
know *what* changed.

Capacity knobs (also see :func:`resolve_capacity`):

* ``REPRO_PLAN_CACHE=0`` disables both caches (every lookup misses and
  nothing is stored) — used by CI to keep the uncached path honest.
* ``REPRO_PLAN_CACHE_SIZE=<n>`` bounds each cache to *n* entries
  (default 256); least-recently-used entries are evicted.

Each cache keeps always-on integer counters (``hits``/``misses``/
``invalidations``) and mirrors them into :data:`repro.obs.metrics.ENGINE_METRICS`
under ``<prefix>.hits`` etc. when the registry is enabled.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict

from repro.obs.metrics import ENGINE_METRICS

DEFAULT_CAPACITY = 256

_FALSEY = {"0", "false", "off", "no"}


def cache_enabled():
    """False when ``REPRO_PLAN_CACHE`` disables the compiled-query caches."""
    return os.environ.get("REPRO_PLAN_CACHE", "1").strip().lower() not in _FALSEY


def resolve_capacity(explicit=None):
    """Resolve a cache capacity from an explicit value or the environment.

    ``explicit`` wins when given (0 disables).  Otherwise the environment
    decides: ``REPRO_PLAN_CACHE=0`` yields 0, else ``REPRO_PLAN_CACHE_SIZE``
    (default :data:`DEFAULT_CAPACITY`).
    """
    if explicit is not None:
        return max(0, int(explicit))
    if not cache_enabled():
        return 0
    raw = os.environ.get("REPRO_PLAN_CACHE_SIZE", "")
    try:
        return max(0, int(raw)) if raw.strip() else DEFAULT_CAPACITY
    except ValueError:
        return DEFAULT_CAPACITY


class LRUCache:
    """Thread-safe bounded LRU map with epoch validation and counters.

    ``capacity`` of 0 disables the cache entirely; ``None`` means unbounded.
    ``get``/``put`` take an optional ``epoch``: entries stored under a
    different epoch are treated as invalidated on lookup.
    """

    def __init__(self, capacity=DEFAULT_CAPACITY, metrics_prefix=None):
        self.capacity = capacity
        self.metrics_prefix = metrics_prefix
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._entries = OrderedDict()
        self._lock = threading.Lock()

    @property
    def enabled(self):
        return self.capacity != 0

    def __len__(self):
        return len(self._entries)

    def get(self, key, epoch=None):
        """Return the cached value, or None on miss / stale epoch."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and epoch is not None and entry[0] != epoch:
                del self._entries[key]
                self.invalidations += 1
                entry = None
            if entry is None:
                self.misses += 1
                self._mirror("misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._mirror("hits")
            return entry[1]

    def put(self, key, value, epoch=None):
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = (epoch, value)
            self._entries.move_to_end(key)
            if self.capacity is not None:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
            self._mirror_size()

    def invalidate_all(self):
        """Drop every entry (counted as invalidations)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            if dropped:
                self._mirror("invalidations", dropped)
            self._mirror_size()
        return dropped

    def reset_counters(self):
        with self._lock:
            self.hits = self.misses = self.invalidations = 0

    def stats(self):
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "size": len(self._entries),
                "capacity": self.capacity,
            }

    def _mirror(self, name, amount=1):
        if self.metrics_prefix and ENGINE_METRICS.enabled:
            ENGINE_METRICS.counter(f"{self.metrics_prefix}.{name}").inc(amount)

    def _mirror_size(self):
        if self.metrics_prefix and ENGINE_METRICS.enabled:
            ENGINE_METRICS.gauge(f"{self.metrics_prefix}.size").set(
                len(self._entries)
            )
