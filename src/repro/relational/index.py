"""Secondary indexes: hash (equality), sorted (range) and expression indexes.

Index keys are computed by a *key function* over the full row tuple.  For a
plain column index the key function projects one column; for an expression
index (e.g. over ``JSON_VAL(attr, 'name')``) it evaluates the indexed
expression.  The planner matches predicates against an index through its
*fingerprint*, a canonical string of the indexed expression(s).
"""

from __future__ import annotations

import bisect

from repro.obs.metrics import ENGINE_METRICS
from repro.relational.errors import ConstraintError

# index access counters (only touched when ENGINE_METRICS is enabled)
_PROBES = ENGINE_METRICS.counter("index.probes")
_RANGE_SCANS = ENGINE_METRICS.counter("index.range_scans")


class _TotalOrderKey:
    """Wrap heterogeneous values so they sort without TypeError.

    Values order first by a type rank (None < bool < numbers < str < other),
    then by value within the rank.
    """

    __slots__ = ("rank", "value")

    def __init__(self, value):
        if value is None:
            self.rank, self.value = 0, 0
        elif isinstance(value, bool):
            self.rank, self.value = 1, int(value)
        elif isinstance(value, (int, float)):
            self.rank, self.value = 2, value
        elif isinstance(value, str):
            self.rank, self.value = 3, value
        else:
            self.rank, self.value = 4, repr(value)

    def __lt__(self, other):
        if self.rank != other.rank:
            return self.rank < other.rank
        return self.value < other.value

    def __eq__(self, other):
        return self.rank == other.rank and self.value == other.value

    def __le__(self, other):
        return self == other or self < other

    def __hash__(self):
        return hash((self.rank, self.value))


def total_order_key(value):
    """Public helper: a sort key valid across mixed value types."""
    if isinstance(value, tuple):
        return tuple(_TotalOrderKey(part) for part in value)
    return _TotalOrderKey(value)


class Index:
    """Base class for all secondary indexes."""

    kind = "abstract"

    def __init__(self, name, table_name, key_function, fingerprint, unique=False):
        self.name = name.lower()
        self.table_name = table_name.lower()
        self.key_function = key_function
        self.fingerprint = fingerprint
        self.unique = unique
        #: the CREATE INDEX statement that built this index, when there was
        #: one — checkpoint snapshots replay it to rebuild the structure
        #: (key functions are compiled closures and never serialized)
        self.ddl = None

    def key_of(self, row):
        return self.key_function(row)

    def insert(self, rid, row):
        raise NotImplementedError

    def delete(self, rid, row):
        raise NotImplementedError

    def update(self, rid, old_row, new_row):
        old_key = self.key_of(old_row)
        new_key = self.key_of(new_row)
        if old_key == new_key:
            return
        self.delete(rid, old_row)
        self.insert(rid, new_row)

    def lookup(self, key):
        """Return an iterable of RIDs whose index key equals *key*."""
        raise NotImplementedError


class HashIndex(Index):
    """Equality index: dict from key to the set of matching RIDs.

    ``None`` keys are indexed too (lookups for them are used by ``IS NULL``
    style predicates only when explicitly requested by the planner).
    """

    kind = "hash"

    def __init__(self, name, table_name, key_function, fingerprint, unique=False):
        super().__init__(name, table_name, key_function, fingerprint, unique)
        self._buckets: dict[object, list] = {}

    def __len__(self):
        return sum(len(rids) for rids in self._buckets.values())

    def insert(self, rid, row):
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [rid]
            return
        if self.unique and key is not None:
            raise ConstraintError(
                f"unique index {self.name!r} violated for key {key!r}"
            )
        bucket.append(rid)

    def delete(self, rid, row):
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if not bucket:
            return
        try:
            bucket.remove(rid)
        except ValueError:
            return
        if not bucket:
            del self._buckets[key]

    def lookup(self, key):
        if ENGINE_METRICS.enabled:
            _PROBES.inc()
        return self._buckets.get(key, ())

    def distinct_keys(self):
        return len(self._buckets)


class SortedIndex(Index):
    """Range index: a sorted list of ``(order_key, rid, key)`` entries.

    Entries order by ``(order_key, rid)`` so raw keys (which may be
    incomparable across types) are never compared directly.  ``None`` keys
    sort first and are skipped by range scans, matching SQL semantics where
    comparisons with NULL are unknown.
    """

    kind = "sorted"

    def __init__(self, name, table_name, key_function, fingerprint, unique=False):
        super().__init__(name, table_name, key_function, fingerprint, unique)
        self._entries: list[tuple] = []

    def __len__(self):
        return len(self._entries)

    def insert(self, rid, row):
        key = self.key_of(row)
        order = total_order_key(key)
        if self.unique and key is not None:
            lo = bisect.bisect_left(self._entries, (order,))
            if lo < len(self._entries) and self._entries[lo][0] == order:
                raise ConstraintError(
                    f"unique index {self.name!r} violated for key {key!r}"
                )
        bisect.insort(self._entries, (order, rid, key))

    def delete(self, rid, row):
        key = self.key_of(row)
        order = total_order_key(key)
        lo = bisect.bisect_left(self._entries, (order,))
        while lo < len(self._entries) and self._entries[lo][0] == order:
            if self._entries[lo][1] == rid:
                del self._entries[lo]
                return
            lo += 1

    def lookup(self, key):
        if ENGINE_METRICS.enabled:
            _PROBES.inc()
        order = total_order_key(key)
        lo = bisect.bisect_left(self._entries, (order,))
        rids = []
        while lo < len(self._entries) and self._entries[lo][0] == order:
            rids.append(self._entries[lo][1])
            lo += 1
        return rids

    def range_scan(self, low=None, high=None, low_inclusive=True, high_inclusive=True):
        """Yield RIDs with keys in the given (partially open) range."""
        if ENGINE_METRICS.enabled:
            _RANGE_SCANS.inc()
        if low is not None:
            low_order = total_order_key(low)
            if low_inclusive:
                lo = bisect.bisect_left(self._entries, (low_order,))
            else:
                lo = bisect.bisect_right(
                    self._entries, (low_order, (float("inf"), float("inf")))
                )
        else:
            lo = 0
        high_order = total_order_key(high) if high is not None else None
        for position in range(lo, len(self._entries)):
            order, rid, key = self._entries[position]
            if high_order is not None:
                if high_inclusive:
                    if high_order < order:
                        break
                elif not (order < high_order):
                    break
            if key is None:
                continue
            yield rid

    def distinct_keys(self):
        seen = 0
        previous = object()
        for __, __rid, key in self._entries:
            if key != previous:
                seen += 1
                previous = key
        return seen


def column_key_function(position):
    """Key function projecting a single column by ordinal position."""

    def key(row, _position=position):
        return row[_position]

    return key


def composite_key_function(positions):
    """Key function projecting several columns as a tuple."""

    def key(row, _positions=tuple(positions)):
        return tuple(row[p] for p in _positions)

    return key
