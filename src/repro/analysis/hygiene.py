"""Durability and hygiene rules.

* ``raw-table-mutation`` — ``apply_insert`` / ``apply_update`` /
  ``apply_delete`` are the *physical redo* entry points on HeapTable:
  they bypass ``txn_source`` undo capture and WAL logging by design, so
  only the storage/recovery layer may call them.  Anywhere else, a call
  is an update that would neither roll back nor survive a crash.
* ``wal-order`` — write-ahead means *ahead*: within a function, a
  ``wal.append(...)`` that happens after ``wal.commit_point()`` logs the
  record on the wrong side of the durability boundary (a crash between
  the two acknowledges a commit whose record was never written).
* ``broad-except`` — ``except Exception:`` (or bare ``except:``) that
  does not re-raise swallows programming errors indistinguishably from
  expected failures.  Handlers containing a bare ``raise`` pass; every
  other site must narrow the type or carry a justified suppression.
* ``mutable-default`` — mutable default arguments (``[]``, ``{}``,
  ``set()``…) are shared across calls; the classic footgun.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, rule

#: files allowed to perform physical (redo-level) table mutation
_PHYSICAL_LAYER = (
    "relational/table.py",
    "relational/recovery.py",
    "relational/pages.py",
)

_APPLY_METHODS = {"apply_insert", "apply_update", "apply_delete"}


def _qualnames(tree):
    """node -> dotted name of the enclosing class/function scope."""
    names = {}

    def visit(node, stack):
        label = stack[-1] if stack else "<module>"
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                qual = f"{stack[-1]}.{child.name}" if stack else child.name
                visit(child, stack + [qual])
            else:
                names[child] = label
                visit(child, stack)
        names[node] = label

    visit(tree, [])
    return names


def _receiver_tail(call):
    """Last dotted component of a call's receiver (``a.b.wal`` -> ``wal``)."""
    fn = call.func
    if not isinstance(fn, ast.Attribute):
        return None
    receiver = fn.value
    if isinstance(receiver, ast.Name):
        return receiver.id
    if isinstance(receiver, ast.Attribute):
        return receiver.attr
    return None


@rule(
    "raw-table-mutation",
    scope="file",
    description="HeapTable.apply_* bypasses txn_source undo capture and the "
    "WAL; only table.py/recovery.py/pages.py may call it",
)
def check_raw_table_mutation(source_file):
    if source_file.relative.endswith(_PHYSICAL_LAYER):
        return []
    findings = []
    names = None
    for node in ast.walk(source_file.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _APPLY_METHODS:
            if names is None:
                names = _qualnames(source_file.tree)
            scope = names.get(node, "<module>")
            findings.append(Finding(
                "raw-table-mutation", source_file.relative, node.lineno,
                f"{scope} calls {node.func.attr}(), which bypasses undo "
                f"capture and WAL logging; use insert/update/delete or move "
                f"the code into the recovery layer",
                symbol=f"{scope}:{node.func.attr}",
            ))
    return findings


@rule(
    "wal-order",
    scope="file",
    description="wal.append() after wal.commit_point() in the same function "
    "logs on the wrong side of the durability boundary",
)
def check_wal_order(source_file):
    findings = []
    for node in ast.walk(source_file.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        commit_line = None
        for call in ast.walk(node):
            if not (isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)):
                continue
            if _receiver_tail(call) != "wal":
                continue
            if call.func.attr == "commit_point":
                if commit_line is None or call.lineno < commit_line:
                    commit_line = call.lineno
        if commit_line is None:
            continue
        for call in ast.walk(node):
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "append"
                and _receiver_tail(call) == "wal"
                and call.lineno > commit_line
            ):
                findings.append(Finding(
                    "wal-order", source_file.relative, call.lineno,
                    f"wal.append() at line {call.lineno} follows "
                    f"wal.commit_point() at line {commit_line} in "
                    f"{node.name}; the record must be logged before the "
                    f"commit point",
                    symbol=f"{node.name}:append-after-commit",
                ))
    return findings


def _is_broad(handler):
    if handler.type is None:
        return True
    names = []
    if isinstance(handler.type, ast.Name):
        names = [handler.type.id]
    elif isinstance(handler.type, ast.Tuple):
        names = [e.id for e in handler.type.elts if isinstance(e, ast.Name)]
    return any(name in ("Exception", "BaseException") for name in names)


def _reraises(handler):
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


@rule(
    "broad-except",
    scope="file",
    description="'except Exception:' that does not re-raise swallows "
    "programming errors; narrow the type or justify a suppression",
)
def check_broad_except(source_file):
    findings = []
    names = None
    for node in ast.walk(source_file.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad(node) or _reraises(node):
            continue
        if names is None:
            names = _qualnames(source_file.tree)
        scope = names.get(node, "<module>")
        caught = "bare except" if node.type is None else "except Exception"
        findings.append(Finding(
            "broad-except", source_file.relative, node.lineno,
            f"{scope} has a broad '{caught}:' handler that does not "
            f"re-raise; narrow the exception type or suppress with a reason",
            symbol=f"{scope}:{caught}",
        ))
    return findings


_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict"}


def _is_mutable_default(node):
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


@rule(
    "mutable-default",
    scope="file",
    description="mutable default arguments are shared across calls",
)
def check_mutable_default(source_file):
    findings = []
    for node in ast.walk(source_file.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        arguments = node.args
        defaults = list(arguments.defaults) + [
            default for default in arguments.kw_defaults if default is not None
        ]
        positional = arguments.posonlyargs + arguments.args
        named = positional[len(positional) - len(arguments.defaults):] \
            + [argument for argument, default
               in zip(arguments.kwonlyargs, arguments.kw_defaults)
               if default is not None]
        for argument, default in zip(named, defaults):
            if _is_mutable_default(default):
                findings.append(Finding(
                    "mutable-default", source_file.relative, default.lineno,
                    f"{node.name}() argument '{argument.arg}' has a mutable "
                    f"default; use None and allocate inside the body",
                    symbol=f"{node.name}:{argument.arg}",
                ))
    return findings
