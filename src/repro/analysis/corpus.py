"""The golden translation corpus the SQL invariant checker runs over.

``TABLE8_MATRIX`` is one minimal Gremlin query per paper Table-8 row
(pipe -> query exercising it); ``FIGURE7_EXAMPLES`` are the paper's
running examples that exercise the hash-adjacency CTE shape and the
redundant-EA single-step shortcut.  ``tests/test_table8_coverage.py``
imports the matrix from here so the differential tests and the static
checker always agree on what "the corpus" is.

Keep entries translatable against the TinkerPop classic store — the
checker instantiates ``SQLGraphStore``, loads the classic graph, and
feeds every translation through ``repro.relational.sql``.
"""

# one minimal query per Table 8 row (pipe -> query exercising it)
TABLE8_MATRIX = {
    "out": "g.v(1).out",
    "in": "g.v(3).in",
    "both": "g.v(4).both",
    "outV": "g.e(9).outV",
    "inV": "g.e(9).inV",
    "bothV": "g.e(9).bothV",
    "outE": "g.v(1).outE",
    "inE": "g.v(3).inE",
    "bothE": "g.v(4).bothE",
    "range filter": "g.V.range(1, 3).count()",
    "duplicate filter": "g.v(1).out.in.dedup()",
    "id filter": "g.V.has('id', 3)",
    "property filter": "g.V.has('age', T.gte, 29)",
    "interval filter": "g.V.interval('age', 27, 32)",
    "label filter": "g.E.has('label', 'created')",
    "except filter": "g.v(1).out.aggregate(x).out.except(x)",
    "retain filter": "g.v(1).out.aggregate(x).out.retain(x)",
    "cyclic path filter": "g.v(1).out.in.cyclicPath.count()",
    "back filter": "g.V.as('x').out('created').back('x')",
    "and filter": "g.V.and(_().out('knows'), _().out('created'))",
    "or filter": "g.V.or(_().has('lang'), _().has('age', T.gt, 33))",
    "if-then-else": "g.V.ifThenElse{it.age != null}{it.age}{0}",
    "split-merge": "g.v(1).copySplit(_().out('knows'), _().out('created'))"
                   ".exhaustMerge()",
    "loop": "g.v(1).out.loop(1){it.loops < 2}",
    "as": "g.V.as('here').count()",
    "aggregate": "g.V.aggregate(all).count()",
    "select": "g.v(1).as('a').out.as('b').select('a','b')",
    "path": "g.v(1).out('created').path",
    "simple path": "g.v(1).out.in.simplePath.count()",
    "order": "g.V.age.order()",
    "count": "g.V.count()",
    "property get": "g.v(1).name",
    "id get": "g.v(1).out.id",
    "label get": "g.v(1).outE.label",
    "table (identity)": "g.V.as('x').table(t).count()",
    "groupCount (identity)": "g.V.groupCount(m).count()",
    "sideEffect (identity)": "g.V.sideEffect{it.age > 0}.count()",
    "iterate (identity)": "g.V.iterate().count()",
}

# the paper's Figure 7 running example (hash-adjacency CTE shape) and
# the §3.5 single-step variant that takes the redundant-EA shortcut
FIGURE7_EXAMPLES = {
    "figure7 two-step": "g.V.filter{it.tag=='w'}.both.both.dedup().count()",
    "figure7 single-step": "g.V.filter{it.tag=='w'}.both.dedup().count()",
}


def golden_corpus():
    """All golden queries: name -> Gremlin text."""
    corpus = dict(TABLE8_MATRIX)
    corpus.update(FIGURE7_EXAMPLES)
    return corpus
