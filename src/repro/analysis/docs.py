"""Markdown docs drift checker (rule ``docs-links``).

Formerly the standalone ``tools/check_docs_links.py``; folded into
reprolint so there is one analysis entry point.  Three kinds of drift
are caught across the repo-root and ``docs/`` markdown files:

1. **Markdown links** — ``[text](path)`` whose relative target does not
   exist (external ``http(s)://`` / ``mailto:`` and pure ``#anchor``
   links are skipped).
2. **Inline file paths** — backticked references like
   ``src/repro/cli.py`` that point at files which are gone.
3. **CLI commands** — backticked ``:command`` references (``:explain``,
   ``:stats``, ...) that the shell in ``src/repro/cli.py`` no longer
   dispatches.

``tools/check_docs_links.py`` remains as a thin wrapper over
:func:`run` for back-compatibility with ``tests/test_docs_links.py``.
"""

from __future__ import annotations

import pathlib
import re

from repro.analysis.core import Finding, rule

#: markdown files to check: repo root + docs/
MARKDOWN_GLOBS = ("*.md", "docs/*.md")

MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: backticked repo-relative file path, e.g. `src/repro/cli.py`
INLINE_PATH = re.compile(
    r"`((?:src|tests|benchmarks|docs|examples|tools)/[A-Za-z0-9_./-]+"
    r"\.[A-Za-z0-9]+)`"
)

#: backticked CLI command, e.g. `:translate` — also matches the command
#: at the start of a longer backticked example like `:sql SELECT ...`
INLINE_CLI_COMMAND = re.compile(r"`(:[a-z]+)[ `]")

#: ``:name`` commands the shell implements, read from the source
CLI_COMMAND_PATTERN = re.compile(r"\"(:[a-z]+)\"")


def markdown_files(root):
    files = []
    for pattern in MARKDOWN_GLOBS:
        files.extend(sorted(pathlib.Path(root).glob(pattern)))
    return files


def cli_commands(root):
    """The set of ``:name`` commands src/repro/cli.py dispatches on."""
    source_path = pathlib.Path(root) / "src/repro/cli.py"
    if not source_path.exists():
        return None
    return set(CLI_COMMAND_PATTERN.findall(source_path.read_text()))


def check_file(root, path, commands):
    """``(line, problem)`` pairs for one markdown file."""
    root = pathlib.Path(root)
    problems = []
    text = path.read_text()
    base = path.parent

    def line_of(match):
        return text.count("\n", 0, match.start()) + 1

    for match in MARKDOWN_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        if not (base / target).exists() and not (root / target).exists():
            problems.append((line_of(match), f"dead link: ({match.group(1)})"))

    for match in INLINE_PATH.finditer(text):
        target = match.group(1)
        if target.endswith(".txt"):
            continue  # benchmark outputs are generated, not committed
        if not (root / target).exists():
            problems.append(
                (line_of(match), f"missing file reference: `{target}`")
            )

    for match in INLINE_CLI_COMMAND.finditer(text):
        command = match.group(1)
        if commands is not None and command not in commands:
            problems.append((
                line_of(match),
                f"unknown CLI command `{command}` "
                f"(not dispatched in src/repro/cli.py)",
            ))

    return problems


def run(root):
    """Check every markdown file; returns ``{relative_path: [problems]}``.

    The legacy report shape (problem strings without line numbers), kept
    for ``tools/check_docs_links.py`` and its test.
    """
    root = pathlib.Path(root)
    commands = cli_commands(root)
    report = {}
    for path in markdown_files(root):
        problems = [p for _line, p in check_file(root, path, commands)]
        if problems:
            report[str(path.relative_to(root))] = problems
    return report


@rule(
    "docs-links",
    scope="project",
    description="markdown docs must not reference dead links, missing "
    "files, or CLI commands the shell no longer dispatches",
)
def check_docs_links(context):
    root = context.root
    commands = cli_commands(root)
    findings = []
    for path in markdown_files(root):
        relative = str(path.relative_to(root))
        for line, problem in check_file(root, path, commands):
            findings.append(Finding(
                "docs-links", relative, line, problem,
                symbol=problem,
            ))
    return findings
