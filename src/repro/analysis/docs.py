"""Markdown docs drift checker (rule ``docs-links``).

Formerly the standalone ``tools/check_docs_links.py``; folded into
reprolint so there is one analysis entry point.  Three kinds of drift
are caught across the repo-root and ``docs/`` markdown files:

1. **Markdown links** — ``[text](path)`` whose relative target does not
   exist (external ``http(s)://`` / ``mailto:`` and pure ``#anchor``
   links are skipped).
2. **Inline file paths** — backticked references like
   ``src/repro/cli.py`` that point at files which are gone.
3. **CLI commands** — backticked ``:command`` references (``:explain``,
   ``:stats``, ...) that the shell in ``src/repro/cli.py`` no longer
   dispatches.
4. **EXPLAIN ANALYZE vocabulary** — every annotation field in
   ``EXPLAIN_ANNOTATION_FIELDS`` (``src/repro/obs/stats.py``) must be
   documented, backticked, in ``docs/OBSERVABILITY.md``; adding a field
   to the renderer without documenting it fails the docs job.
5. **Benchmark-number sync** — every string in the ``summary`` block of
   a committed benchmark record must appear verbatim in its handbook
   (``BENCH_vectorized.json`` ↔ ``docs/EXECUTION.md``,
   ``BENCH_optimizer.json`` ↔ ``docs/OPTIMIZER.md``,
   ``BENCH_analytics.json`` ↔ ``docs/ANALYTICS.md``), so the handbook's
   measured numbers cannot drift from the committed benchmark record
   (re-recording the benchmark means updating the handbook in the same
   commit).

``tools/check_docs_links.py`` remains as a thin wrapper over
:func:`run` for back-compatibility with ``tests/test_docs_links.py``.
"""

from __future__ import annotations

import ast
import json
import pathlib
import re

from repro.analysis.core import Finding, rule

#: markdown files to check: repo root + docs/
MARKDOWN_GLOBS = ("*.md", "docs/*.md")

MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: backticked repo-relative file path, e.g. `src/repro/cli.py`
INLINE_PATH = re.compile(
    r"`((?:src|tests|benchmarks|docs|examples|tools)/[A-Za-z0-9_./-]+"
    r"\.[A-Za-z0-9]+)`"
)

#: backticked CLI command, e.g. `:translate` — also matches the command
#: at the start of a longer backticked example like `:sql SELECT ...`
INLINE_CLI_COMMAND = re.compile(r"`(:[a-z]+)[ `]")

#: ``:name`` commands the shell implements, read from the source
CLI_COMMAND_PATTERN = re.compile(r"\"(:[a-z]+)\"")

#: the annotation-field tuple in src/repro/obs/stats.py
ANNOTATION_FIELDS_PATTERN = re.compile(
    r"EXPLAIN_ANNOTATION_FIELDS\s*=\s*(\([^)]*\))"
)

#: (source of truth, document that must stay in sync)
STATS_SOURCE = "src/repro/obs/stats.py"
OBSERVABILITY_DOC = "docs/OBSERVABILITY.md"
BENCH_VECTORIZED_JSON = "benchmarks/results/BENCH_vectorized.json"
EXECUTION_DOC = "docs/EXECUTION.md"
BENCH_OPTIMIZER_JSON = "benchmarks/results/BENCH_optimizer.json"
OPTIMIZER_DOC = "docs/OPTIMIZER.md"
BENCH_ANALYTICS_JSON = "benchmarks/results/BENCH_analytics.json"
ANALYTICS_DOC = "docs/ANALYTICS.md"
BENCH_SHARDING_JSON = "benchmarks/results/BENCH_sharding.json"
SHARDING_DOC = "docs/SHARDING.md"

#: every committed benchmark record and the handbook that quotes it
BENCHMARK_SYNC_PAIRS = (
    (BENCH_VECTORIZED_JSON, EXECUTION_DOC),
    (BENCH_OPTIMIZER_JSON, OPTIMIZER_DOC),
    (BENCH_ANALYTICS_JSON, ANALYTICS_DOC),
    (BENCH_SHARDING_JSON, SHARDING_DOC),
)


def markdown_files(root):
    files = []
    for pattern in MARKDOWN_GLOBS:
        files.extend(sorted(pathlib.Path(root).glob(pattern)))
    return files


def cli_commands(root):
    """The set of ``:name`` commands src/repro/cli.py dispatches on."""
    source_path = pathlib.Path(root) / "src/repro/cli.py"
    if not source_path.exists():
        return None
    return set(CLI_COMMAND_PATTERN.findall(source_path.read_text()))


def check_file(root, path, commands):
    """``(line, problem)`` pairs for one markdown file."""
    root = pathlib.Path(root)
    problems = []
    text = path.read_text()
    base = path.parent

    def line_of(match):
        return text.count("\n", 0, match.start()) + 1

    for match in MARKDOWN_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        if not (base / target).exists() and not (root / target).exists():
            problems.append((line_of(match), f"dead link: ({match.group(1)})"))

    for match in INLINE_PATH.finditer(text):
        target = match.group(1)
        if target.endswith(".txt"):
            continue  # benchmark outputs are generated, not committed
        if not (root / target).exists():
            problems.append(
                (line_of(match), f"missing file reference: `{target}`")
            )

    for match in INLINE_CLI_COMMAND.finditer(text):
        command = match.group(1)
        if commands is not None and command not in commands:
            problems.append((
                line_of(match),
                f"unknown CLI command `{command}` "
                f"(not dispatched in src/repro/cli.py)",
            ))

    return problems


def explain_annotation_fields(root):
    """The ``EXPLAIN_ANNOTATION_FIELDS`` tuple, read from the source."""
    source_path = pathlib.Path(root) / STATS_SOURCE
    if not source_path.exists():
        return None
    match = ANNOTATION_FIELDS_PATTERN.search(source_path.read_text())
    if match is None:
        return None
    return ast.literal_eval(match.group(1))


def check_annotation_fields(root):
    """``(doc, line, problem)`` for undocumented EXPLAIN ANALYZE fields.

    Each field the renderer can emit must appear backticked somewhere in
    docs/OBSERVABILITY.md — either alone (`` `batches` ``) or inside a
    larger backticked example (`` `(actual_rows=N ...)` ``).
    """
    fields = explain_annotation_fields(root)
    if not fields:
        return []
    doc_path = pathlib.Path(root) / OBSERVABILITY_DOC
    if not doc_path.exists():
        return [(OBSERVABILITY_DOC, 1,
                 f"missing document: {OBSERVABILITY_DOC} must describe "
                 f"the EXPLAIN ANALYZE annotation fields {fields}")]
    text = doc_path.read_text()
    problems = []
    for field in fields:
        if not re.search(rf"`[^`]*\b{re.escape(field)}\b[^`]*`", text):
            problems.append((
                OBSERVABILITY_DOC, 1,
                f"EXPLAIN ANALYZE field `{field}` "
                f"(EXPLAIN_ANNOTATION_FIELDS in {STATS_SOURCE}) "
                f"is not documented in {OBSERVABILITY_DOC}",
            ))
    return problems


def check_benchmark_sync(root):
    """``(doc, line, problem)`` for handbook/benchmark number drift.

    For every ``(record, handbook)`` pair in BENCHMARK_SYNC_PAIRS, each
    string value in the record's ``summary`` object must appear verbatim
    in the handbook.  Checked against the committed files only — no
    benchmark is re-run.
    """
    root = pathlib.Path(root)
    problems = []
    for json_name, doc_name in BENCHMARK_SYNC_PAIRS:
        json_path = root / json_name
        if not json_path.exists():
            continue
        try:
            summary = json.loads(json_path.read_text()).get("summary", {})
        except (ValueError, AttributeError):
            problems.append((json_name, 1,
                             f"unparseable benchmark record: {json_name}"))
            continue
        doc_path = root / doc_name
        if not doc_path.exists():
            problems.append((doc_name, 1,
                             f"missing document: {doc_name} must quote the "
                             f"{json_name} summary strings"))
            continue
        text = doc_path.read_text()
        for key, value in sorted(summary.items()):
            if isinstance(value, str) and value not in text:
                problems.append((
                    doc_name, 1,
                    f"stale benchmark reference: summary[{key!r}] of "
                    f"{json_name} ({value!r}) does not appear "
                    f"verbatim in {doc_name}",
                ))
    return problems


def sync_problems(root):
    """All cross-file sync problems as ``(doc, line, problem)`` triples."""
    return check_annotation_fields(root) + check_benchmark_sync(root)


def run(root):
    """Check every markdown file; returns ``{relative_path: [problems]}``.

    The legacy report shape (problem strings without line numbers), kept
    for ``tools/check_docs_links.py`` and its test.
    """
    root = pathlib.Path(root)
    commands = cli_commands(root)
    report = {}
    for path in markdown_files(root):
        problems = [p for _line, p in check_file(root, path, commands)]
        if problems:
            report[str(path.relative_to(root))] = problems
    for doc, _line, problem in sync_problems(root):
        report.setdefault(doc, []).append(problem)
    return report


@rule(
    "docs-links",
    scope="project",
    description="markdown docs must not reference dead links, missing "
    "files, or CLI commands the shell no longer dispatches; "
    "docs/OBSERVABILITY.md must document every EXPLAIN ANALYZE "
    "annotation field and each benchmark handbook must quote its "
    "committed BENCH_*.json summary verbatim",
)
def check_docs_links(context):
    root = context.root
    commands = cli_commands(root)
    findings = []
    for path in markdown_files(root):
        relative = str(path.relative_to(root))
        for line, problem in check_file(root, path, commands):
            findings.append(Finding(
                "docs-links", relative, line, problem,
                symbol=problem,
            ))
    for doc, line, problem in sync_problems(root):
        findings.append(Finding(
            "docs-links", doc, line, problem,
            symbol=problem,
        ))
    return findings
