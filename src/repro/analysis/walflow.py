"""WAL commit-point reachability — the PR-9 durability bug, as a rule.

The durability contract (docs/WAL.md): a WAL record is *promised* only
once a commit point (``wal.commit_point()`` / ``wal.sync()``) follows
it.  On an **autocommit** path — no explicit transaction open — the
appending code itself must reach that commit point before returning;
inside an explicit transaction, ``Transaction._finish`` commits later.
PR 9 fixed exactly this by hand: stored-procedure CRUD appended
mutation records and returned, so acknowledged writes could die with
the process.  This rule re-detects that bug class.

How it works, per function (see :mod:`repro.analysis.cfg` /
:mod:`repro.analysis.dataflow`):

* **sites** — CFG nodes that may append: direct ``wal.append`` /
  ``wal.log_op`` calls (receiver spelled ``wal`` / ``_wal``; the
  ``WriteAheadLog`` internals use ``self.`` receivers and stay below
  this abstraction line), mutating calls (``insert`` / ``update`` /
  ``delete`` / ``restore``) on *table-valued* expressions, and calls to
  functions already known to defer (below).  Table-valuedness is a
  small interprocedural type inference seeded at ``.table(...)`` /
  ``.get_table(...)`` / ``HeapTable(...)`` and propagated through
  locals, dict/list containers, returns and call arguments.
* **discharge** — a site is fine when *no* normal-flow path from it
  reaches function exit while avoiding every commit node (a call that
  commits, directly or transitively) and every transaction-guarded
  branch edge (``if transaction is not None: ...`` where the name came
  from ``current_transaction()``).  Sites only reachable *through* a
  transaction-guarded edge are fine outright (the explicit-transaction
  escape hatch); sites on exception paths are exempt (a failed
  operation promises nothing); sites inside ``with wal.pause():`` are
  invisible to recovery and skipped.
* **deferral** — an undischarged site makes the function *defer*: its
  callers inherit the obligation as a site at the call node.  Only
  functions that defer and have **no resolved callers** are reported —
  everything else surfaces at the outermost caller that fails to
  commit.  ``baselines/`` modules (benchmark models, no durability)
  are exempt.

A ``# reprolint: disable=wal-commit-reachability -- reason`` on a site
line discharges it *and* stops the deferral chain there.
"""

from __future__ import annotations

import ast

from repro.analysis import cfg as cfglib
from repro.analysis import dataflow
from repro.analysis.core import Finding, rule
from repro.analysis.hygiene import _receiver_tail
from repro.analysis.lockgraph import Package

RULE = "wal-commit-reachability"

_WAL_NAMES = {"wal", "_wal"}
_APPEND_ATTRS = {"append", "log_op"}
_COMMIT_ATTRS = {"commit_point", "sync"}
_MUTATORS = {"insert", "update", "delete", "restore"}
_TABLE_FACTORIES = {"table", "get_table"}


def _is_append(call):
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in _APPEND_ATTRS
        and _receiver_tail(call) in _WAL_NAMES
    )


def _is_commit(call):
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in _COMMIT_ATTRS
        and _receiver_tail(call) in _WAL_NAMES
    )


def _is_pause(call):
    return (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Attribute)
        and call.func.attr == "pause"
        and _receiver_tail(call) in _WAL_NAMES
    )


def _is_current_txn_call(expr):
    if not isinstance(expr, ast.Call):
        return False
    fn = expr.func
    if isinstance(fn, ast.Attribute):
        return fn.attr == "current_transaction"
    return isinstance(fn, ast.Name) and fn.id == "current_transaction"


class _FuncFlow:
    """Per-function analysis state shared across the global fixpoints."""

    __slots__ = ("func", "cfg", "locals", "ret_kind", "commits", "defers",
                 "callees", "exempt", "pause_spans", "txn_edges",
                 "commit_nodes", "undischarged")

    def __init__(self, func, exempt):
        self.func = func
        self.cfg = cfglib.build_cfg(func.node)
        self.locals = {}    # name -> 'table' | 'map' | 'seq' | 'items'
        self.ret_kind = None
        self.commits = False
        self.defers = False
        self.callees = set()
        self.exempt = exempt
        self.pause_spans = [
            (n.lineno, getattr(n, "end_lineno", n.lineno) or n.lineno)
            for n in ast.walk(func.node)
            if isinstance(n, (ast.With, ast.AsyncWith))
            and any(_is_pause(item.context_expr) for item in n.items)
        ]
        self.txn_edges = {}
        self.commit_nodes = set()
        self.undischarged = []

    def paused(self, line):
        return any(first <= line <= last for first, last in self.pause_spans)

    def set_local(self, name, kind):
        if kind and self.locals.get(name) != kind:
            # never downgrade an established kind (may-analysis)
            if self.locals.get(name) is None:
                self.locals[name] = kind
                return True
        return False


class _Analysis:
    def __init__(self, context):
        self.package = Package(context)
        self.flows = {}
        for key, func in self.package.functions.items():
            exempt = "baselines/" in func.source_file.relative
            self.flows[key] = _FuncFlow(func, exempt)

    # --- table-valuedness -------------------------------------------

    def kind_of(self, flow, expr):
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            return flow.locals.get(expr.id)
        if isinstance(expr, ast.Call):
            fn = expr.func
            if isinstance(fn, ast.Attribute):
                if fn.attr in _TABLE_FACTORIES:
                    return "table"
                receiver = self.kind_of(flow, fn.value)
                if receiver == "map":
                    if fn.attr == "values":
                        return "seq"
                    if fn.attr == "items":
                        return "items"
                    if fn.attr == "get":
                        return "table"
            if isinstance(fn, ast.Name) and fn.id == "HeapTable":
                return "table"
            callee = self.package.resolve_call(flow.func, expr)
            if callee is not None:
                return self.flows[callee].ret_kind
            return None
        if isinstance(expr, ast.Subscript):
            if self.kind_of(flow, expr.value) in ("map", "seq"):
                return "table"
            return None
        if isinstance(expr, ast.Dict):
            if any(self.kind_of(flow, v) == "table"
                   for v in expr.values if v is not None):
                return "map"
            return None
        if isinstance(expr, ast.DictComp):
            return "map" if self.kind_of(flow, expr.value) == "table" else None
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            if any(self.kind_of(flow, e) == "table" for e in expr.elts):
                return "seq"
            return None
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return "seq" if self.kind_of(flow, expr.elt) == "table" else None
        if isinstance(expr, ast.IfExp):
            return self.kind_of(flow, expr.body) \
                or self.kind_of(flow, expr.orelse)
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                kind = self.kind_of(flow, value)
                if kind:
                    return kind
            return None
        if isinstance(expr, ast.NamedExpr):
            return self.kind_of(flow, expr.value)
        return None

    def _sweep(self, flow):
        """One pass of local + interprocedural kind propagation."""
        changed = False
        for node in ast.walk(flow.func.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                changed |= flow.set_local(
                    node.targets[0].id, self.kind_of(flow, node.value))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                iter_kind = self.kind_of(flow, node.iter)
                target = node.target
                if iter_kind == "seq" and isinstance(target, ast.Name):
                    changed |= flow.set_local(target.id, "table")
                elif iter_kind == "items" and isinstance(target, ast.Tuple) \
                        and target.elts \
                        and isinstance(target.elts[-1], ast.Name):
                    changed |= flow.set_local(target.elts[-1].id, "table")
            elif isinstance(node, ast.Return) and node.value is not None:
                kind = self.kind_of(flow, node.value)
                if kind and flow.ret_kind is None:
                    flow.ret_kind = kind
                    changed = True
            elif isinstance(node, ast.Call):
                changed |= self._seed_params(flow, node)
        return changed

    def _seed_params(self, flow, call):
        """Table-valued arguments seed the resolved callee's parameters."""
        callee = self.package.resolve_call(flow.func, call)
        if callee is None:
            return False
        target = self.flows[callee]
        args = target.func.node.args
        params = [a.arg for a in args.posonlyargs + args.args]
        if target.func.class_name and params and params[0] in ("self", "cls"):
            params = params[1:]
        named = set(params) | {a.arg for a in args.kwonlyargs}
        changed = False
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if position < len(params):
                changed |= target.set_local(
                    params[position], self.kind_of(flow, arg))
        for keyword in call.keywords:
            if keyword.arg and keyword.arg in named:
                changed |= target.set_local(
                    keyword.arg, self.kind_of(flow, keyword.value))
        return changed

    # --- summaries ---------------------------------------------------

    def run(self):
        flows = self.flows
        # 1. table-valuedness to fixpoint (bounded: kinds only grow)
        for _ in range(12):
            changed = False
            for flow in flows.values():
                changed |= self._sweep(flow)
            if not changed:
                break

        # 2. resolved callee sets + commits (exists) fixpoint
        for flow in flows.values():
            for node in ast.walk(flow.func.node):
                if isinstance(node, ast.Call):
                    if _is_commit(node):
                        flow.commits = True
                    callee = self.package.resolve_call(flow.func, node)
                    if callee is not None:
                        flow.callees.add(callee)
        changed = True
        while changed:
            changed = False
            for flow in flows.values():
                if flow.commits:
                    continue
                if any(flows[c].commits for c in flow.callees):
                    flow.commits = True
                    changed = True

        # 3. per-function commit nodes + txn-guard edges
        for flow in flows.values():
            self._mark_nodes(flow)

        # 4. deferral (monotone-grow) fixpoint
        changed = True
        while changed:
            changed = False
            for flow in flows.values():
                if flow.exempt:
                    continue
                undischarged = self._check_sites(flow)
                flow.undischarged = undischarged
                if undischarged and not flow.defers:
                    flow.defers = True
                    changed = True

        # 5. report deferring functions nobody resolves calls to
        callers = {}
        for flow in flows.values():
            for callee in flow.callees:
                callers.setdefault(callee, set()).add(flow.func.key)
            for _, _, label in flow.undischarged:
                # a table mutation is a call into HeapTable even when the
                # receiver does not resolve by name
                if label.startswith("table."):
                    method = label.split(".", 1)[1]
                    callers.setdefault(f"HeapTable.{method}", set()).add(
                        flow.func.key)
        findings = []
        for key in sorted(flows):
            flow = flows[key]
            if not flow.defers or callers.get(key):
                continue
            for line, _node, label in flow.undischarged:
                findings.append(Finding(
                    RULE, flow.func.source_file.relative, line,
                    f"{key}: {self._describe(label)} may reach function exit "
                    f"on an autocommit path without a WAL commit point",
                    symbol=f"{key}:{label}",
                ))
        return findings

    @staticmethod
    def _describe(label):
        if label.startswith("call:"):
            return f"call to deferring '{label[5:]}'"
        return f"'{label}'"

    def _mark_nodes(self, flow):
        graph = flow.cfg
        txn_names = {
            stmt.targets[0].id
            for stmt in ast.walk(flow.func.node)
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and _is_current_txn_call(stmt.value)
        }

        def is_txn_expr(expr):
            return (
                isinstance(expr, ast.Name) and expr.id in txn_names
            ) or _is_current_txn_call(expr)

        for stmt in ast.walk(flow.func.node):
            if not isinstance(stmt, ast.If):
                continue
            node = graph.node_for(stmt)
            if node is None:
                continue
            branch = _txn_branch(stmt.test, is_txn_expr)
            if branch is not None:
                flow.txn_edges[node.index] = branch

    def _commit_node_set(self, flow):
        nodes = set()
        for node in flow.cfg.nodes:
            if node.stmt is None:
                continue
            for call in cfglib.calls_at(node.stmt):
                if _is_commit(call):
                    nodes.add(node.index)
                    continue
                callee = self.package.resolve_call(flow.func, call)
                if callee is not None and self.flows[callee].commits:
                    nodes.add(node.index)
        return nodes

    # --- sites and discharge -----------------------------------------

    def _check_sites(self, flow):
        graph = flow.cfg
        if not flow.commit_nodes:
            flow.commit_nodes = self._commit_node_set(flow)
        source_file = flow.func.source_file
        undischarged = []
        seen_labels = set()
        for node in graph.nodes:
            if node.stmt is None or flow.paused(node.line):
                continue
            for call in cfglib.calls_at(node.stmt):
                label = self._site_label(flow, call)
                if label is None:
                    continue
                last = getattr(node.stmt, "end_lineno", node.line) or node.line
                if source_file.suppressed(RULE, node.stmt.lineno, last):
                    continue  # discharged by hand; deferral chain ends here
                if self._discharged(flow, node):
                    continue
                if label not in seen_labels:
                    seen_labels.add(label)
                    undischarged.append((node.line, node.index, label))
        return undischarged

    def _site_label(self, flow, call):
        if _is_append(call):
            return "wal." + call.func.attr
        if isinstance(call.func, ast.Attribute) \
                and call.func.attr in _MUTATORS \
                and self.kind_of(flow, call.func.value) == "table":
            return "table." + call.func.attr
        callee = self.package.resolve_call(flow.func, call)
        if callee is not None and self.flows[callee].defers:
            return "call:" + callee
        return None

    def _discharged(self, flow, node):
        graph = flow.cfg
        txn_edges = flow.txn_edges

        def autocommit_edge(src, _dst, kind):
            return txn_edges.get(src) != kind

        # only reachable with a transaction open -> _finish commits later
        entry_reach = dataflow.reachable(
            graph, graph.entry, edge_ok=autocommit_edge)
        if node.index not in entry_reach:
            return True

        def normal_autocommit_edge(src, dst, kind):
            return kind != cfglib.EXC and autocommit_edge(src, dst, kind)

        commit_nodes = flow.commit_nodes
        return not dataflow.exists_path(
            graph, node.index,
            lambda n: n == graph.exit,
            blocked=lambda n: n in commit_nodes,
            edge_ok=normal_autocommit_edge,
        )


def _txn_branch(test, is_txn_expr):
    """Which edge kind out of this ``if`` is the in-transaction branch."""
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
        and is_txn_expr(test.left)
    ):
        if isinstance(test.ops[0], ast.IsNot):
            return cfglib.TRUE   # `txn is not None` -> true branch has txn
        if isinstance(test.ops[0], ast.Is):
            return cfglib.FALSE  # `txn is None` -> false branch has txn
    if is_txn_expr(test):
        return cfglib.TRUE
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not) \
            and is_txn_expr(test.operand):
        return cfglib.FALSE
    return None


@rule(
    RULE,
    scope="project",
    description="every WAL append on an autocommit path must reach a "
    "commit point (wal.commit_point()/sync()) before function exit",
)
def check_wal_commit_reachability(context):
    return _Analysis(context).run()
