"""Per-function control-flow graphs over the Python AST.

Statement-granular CFGs for the flow-sensitive rules (wal-commit
reachability, release-on-all-paths).  Every simple statement and every
compound-statement *header* (the ``if``/``while`` test, the ``for``
iterable, the ``with`` context expressions) becomes one node; suites
belong to their own nodes.  Three synthetic nodes frame the function:
``entry``, ``exit`` (normal returns / fall-off-the-end) and
``raise_exit`` (exceptions that escape the function).

Edges carry a kind:

* :data:`FLOW` — ordinary fall-through;
* :data:`TRUE` / :data:`FALSE` — the two arms of a branch header
  (``if``/``while`` test outcome, ``for`` yielded-vs-exhausted);
* :data:`EXC` — the statement raised.

Exception edges are added from any statement that *may* raise — a
``raise``/``assert``, an import, or anything whose evaluated expressions
contain a call or ``await`` (attribute access and arithmetic are assumed
non-raising; ``lambda`` bodies and nested ``def`` bodies run elsewhere
and are excluded).  ``for`` headers always get an exception edge because
the iteration protocol itself calls ``__iter__``/``__next__``.

``try`` lowering follows Python semantics: body exceptions edge to every
handler (stopping at a catch-all handler — bare ``except``, ``except
Exception``/``BaseException``); handler and ``else`` bodies run outside
the handler scope but inside any ``finally``.  A ``finally`` suite is
lowered once, in the *enclosing* frame context (its own exceptions
propagate outward, not to this ``try``'s handlers), behind a synthetic
``<finally@line>`` marker node.  Every way of leaving the ``try`` —
normal completion, exception, ``return``, ``break``, ``continue`` —
edges into that marker, and after the suite the union of all pending
continuations is resumed.  The union is a deliberate over-approximation
(a path that entered the finally via ``return`` also appears to fall
through) — safe for the may/must queries the rules ask.

``with`` blocks are a single header node plus their suite; ``__exit__``
is not modelled as an implicit handler (rules that care exempt
with-managed resources instead).
"""

from __future__ import annotations

import ast

FLOW = "flow"
TRUE = "true"
FALSE = "false"
EXC = "exc"

_TRY_TYPES = (ast.Try,) + ((ast.TryStar,) if hasattr(ast, "TryStar") else ())
_MATCH_TYPE = getattr(ast, "Match", ())
_FUNC_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)
_DEF_TYPES = _FUNC_TYPES + (ast.ClassDef,)


class Node:
    """One CFG node: a statement, or a synthetic marker."""

    __slots__ = ("index", "kind", "stmt", "line")

    def __init__(self, index, kind, stmt=None, line=0):
        self.index = index
        self.kind = kind  # 'stmt' | 'entry' | 'exit' | 'raise' | 'finally' | 'handler'
        self.stmt = stmt
        self.line = line

    def describe(self):
        """Stable label for tests and messages: ``Assign@12``, ``<exit>``."""
        if self.stmt is not None:
            return f"{type(self.stmt).__name__}@{self.line}"
        if self.line:
            return f"<{self.kind}@{self.line}>"
        return f"<{self.kind}>"

    def __repr__(self):
        return f"Node({self.index}, {self.describe()})"


class CFG:
    """Nodes plus kinded adjacency; ``entry``/``exit``/``raise_exit`` indices."""

    def __init__(self):
        self.nodes = []
        self.succ = {}  # index -> [(index, kind)]
        self.pred = {}  # index -> [(index, kind)]
        self._by_stmt = {}  # id(stmt) -> Node
        self.entry = self.add_node("entry")
        self.exit = self.add_node("exit")
        self.raise_exit = self.add_node("raise")

    def add_node(self, kind, stmt=None, line=0):
        node = Node(len(self.nodes), kind, stmt, line)
        self.nodes.append(node)
        self.succ[node.index] = []
        self.pred[node.index] = []
        if stmt is not None:
            self._by_stmt[id(stmt)] = node
        return node.index

    def add_edge(self, src, dst, kind):
        if (dst, kind) not in self.succ[src]:
            self.succ[src].append((dst, kind))
            self.pred[dst].append((src, kind))

    def node_for(self, stmt):
        """The Node owning *stmt*, or None (e.g. inside a nested def)."""
        return self._by_stmt.get(id(stmt))

    def edge_set(self):
        """``{(src.describe(), dst.describe(), kind)}`` — for assertions."""
        return {
            (self.nodes[src].describe(), self.nodes[dst].describe(), kind)
            for src, targets in self.succ.items()
            for dst, kind in targets
        }


class _LoopFrame:
    __slots__ = ("header", "breaks")

    def __init__(self, header):
        self.header = header
        self.breaks = []  # node indices that break out of this loop


class _TryFrame:
    __slots__ = ("handlers", "catch_all")

    def __init__(self, handlers, catch_all):
        self.handlers = handlers  # handler marker node indices
        self.catch_all = catch_all


class _FinallyFrame:
    __slots__ = ("entry", "conts")

    def __init__(self, entry):
        self.entry = entry  # the <finally> marker node index
        self.conts = set()  # pending: 'normal'|'exc'|'return'|'break'|'continue'


def _catches_all(handler):
    """Bare ``except`` or ``except (Base)Exception`` stops propagation."""
    if handler.type is None:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) \
        else [handler.type]
    for t in types:
        if isinstance(t, ast.Name) and t.id in ("Exception", "BaseException"):
            return True
    return False


class _Builder:
    def __init__(self, func):
        self.func = func
        self.cfg = CFG()
        self.frames = []

    def build(self):
        out = self._suite(self.func.body, [(self.cfg.entry, FLOW)])
        self._join(out, self.cfg.exit)
        return self.cfg

    # --- plumbing ---------------------------------------------------

    def _join(self, frontier, target):
        for src, kind in frontier:
            self.cfg.add_edge(src, target, kind)

    def _new(self, stmt):
        return self.cfg.add_node("stmt", stmt, stmt.lineno)

    def _route_exception(self, src):
        """Edge *src* to wherever an exception raised there lands."""
        for frame in reversed(self.frames):
            if isinstance(frame, _TryFrame):
                for handler in frame.handlers:
                    self.cfg.add_edge(src, handler, EXC)
                if frame.catch_all:
                    return
            elif isinstance(frame, _FinallyFrame):
                self.cfg.add_edge(src, frame.entry, EXC)
                frame.conts.add("exc")
                return
        self.cfg.add_edge(src, self.cfg.raise_exit, EXC)

    def _route_return(self, src, kind=FLOW):
        for frame in reversed(self.frames):
            if isinstance(frame, _FinallyFrame):
                self.cfg.add_edge(src, frame.entry, kind)
                frame.conts.add("return")
                return
        self.cfg.add_edge(src, self.cfg.exit, kind)

    def _route_break(self, src, kind=FLOW):
        for frame in reversed(self.frames):
            if isinstance(frame, _FinallyFrame):
                self.cfg.add_edge(src, frame.entry, kind)
                frame.conts.add("break")
                return
            if isinstance(frame, _LoopFrame):
                frame.breaks.append(src)
                return
        self.cfg.add_edge(src, self.cfg.exit, kind)  # malformed: no loop

    def _route_continue(self, src, kind=FLOW):
        for frame in reversed(self.frames):
            if isinstance(frame, _FinallyFrame):
                self.cfg.add_edge(src, frame.entry, kind)
                frame.conts.add("continue")
                return
            if isinstance(frame, _LoopFrame):
                self.cfg.add_edge(src, frame.header, kind)
                return
        self.cfg.add_edge(src, self.cfg.exit, kind)  # malformed: no loop

    # --- lowering ---------------------------------------------------

    def _suite(self, stmts, frontier):
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt, frontier):
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, ast.While):
            return self._loop(stmt, frontier, header_raises=_contains_call(stmt.test))
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier, header_raises=True)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, _TRY_TYPES):
            return self._try(stmt, frontier)
        if _MATCH_TYPE and isinstance(stmt, _MATCH_TYPE):
            return self._match(stmt, frontier)
        if isinstance(stmt, ast.Return):
            node = self._new(stmt)
            self._join(frontier, node)
            if stmt.value is not None and _contains_call(stmt.value):
                self._route_exception(node)
            self._route_return(node)
            return []
        if isinstance(stmt, ast.Raise):
            node = self._new(stmt)
            self._join(frontier, node)
            self._route_exception(node)
            return []
        if isinstance(stmt, ast.Break):
            node = self._new(stmt)
            self._join(frontier, node)
            self._route_break(node)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._new(stmt)
            self._join(frontier, node)
            self._route_continue(node)
            return []
        node = self._new(stmt)
        self._join(frontier, node)
        if _may_raise(stmt):
            self._route_exception(node)
        return [(node, FLOW)]

    def _if(self, stmt, frontier):
        node = self._new(stmt)
        self._join(frontier, node)
        if _contains_call(stmt.test):
            self._route_exception(node)
        out = self._suite(stmt.body, [(node, TRUE)])
        if stmt.orelse:
            out = out + self._suite(stmt.orelse, [(node, FALSE)])
        else:
            out = out + [(node, FALSE)]
        return out

    def _loop(self, stmt, frontier, header_raises):
        node = self._new(stmt)
        self._join(frontier, node)
        if header_raises:
            self._route_exception(node)
        frame = _LoopFrame(node)
        self.frames.append(frame)
        body_out = self._suite(stmt.body, [(node, TRUE)])
        self.frames.pop()
        self._join(body_out, node)  # back edge
        if stmt.orelse:
            out = self._suite(stmt.orelse, [(node, FALSE)])
        else:
            out = [(node, FALSE)]
        return out + [(b, FLOW) for b in frame.breaks]

    def _with(self, stmt, frontier):
        node = self._new(stmt)
        self._join(frontier, node)
        if any(_contains_call(item.context_expr) for item in stmt.items):
            self._route_exception(node)
        return self._suite(stmt.body, [(node, FLOW)])

    def _match(self, stmt, frontier):
        node = self._new(stmt)
        self._join(frontier, node)
        if _contains_call(stmt.subject):
            self._route_exception(node)
        out = [(node, FALSE)]  # no case matched
        for case in stmt.cases:
            out = out + self._suite(case.body, [(node, TRUE)])
        return out

    def _try(self, stmt, frontier):
        fin_frame = None
        fin_out = None
        if stmt.finalbody:
            marker = self.cfg.add_node(
                "finally", None, stmt.finalbody[0].lineno)
            # lowered in the ENCLOSING context: exceptions inside a
            # finally suite propagate outward, not to this try's handlers
            fin_out = self._suite(stmt.finalbody, [(marker, FLOW)])
            fin_frame = _FinallyFrame(marker)
            self.frames.append(fin_frame)

        try_frame = None
        if stmt.handlers:
            handlers = []
            catch_all = False
            for handler in stmt.handlers:
                handlers.append(
                    self.cfg.add_node("handler", handler, handler.lineno))
                catch_all = catch_all or _catches_all(handler)
            try_frame = _TryFrame(handlers, catch_all)
            self.frames.append(try_frame)

        body_out = self._suite(stmt.body, frontier)
        if try_frame is not None:
            self.frames.pop()
        if stmt.orelse:  # runs only if the body completed; handlers out of scope
            body_out = self._suite(stmt.orelse, body_out)

        normal_out = list(body_out)
        if try_frame is not None:
            for marker, handler in zip(try_frame.handlers, stmt.handlers):
                normal_out.extend(self._suite(handler.body, [(marker, FLOW)]))

        if fin_frame is None:
            return normal_out

        self.frames.pop()
        if normal_out:
            fin_frame.conts.add("normal")
            self._join(normal_out, fin_frame.entry)
        # resume every pending continuation from the finally's exit
        # frontier (the union over-approximation described above)
        out = []
        for cont in sorted(fin_frame.conts):
            if cont == "normal":
                out.extend(fin_out)
            elif cont == "exc":
                for src, _kind in fin_out:
                    self._route_exception(src)
            elif cont == "return":
                for src, kind in fin_out:
                    self._route_return(src, kind)
            elif cont == "break":
                for src, kind in fin_out:
                    self._route_break(src, kind)
            elif cont == "continue":
                for src, kind in fin_out:
                    self._route_continue(src, kind)
        return out


def build_cfg(func):
    """CFG for one ``ast.FunctionDef`` / ``ast.AsyncFunctionDef``."""
    return _Builder(func).build()


# --- expression helpers --------------------------------------------


def evaluated_exprs(stmt):
    """Expressions evaluated *at* this statement's CFG node.

    Compound statements own only their headers; their suites belong to
    other nodes.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    if isinstance(stmt, _DEF_TYPES):
        return list(stmt.decorator_list)
    if isinstance(stmt, _TRY_TYPES):
        return []
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if _MATCH_TYPE and isinstance(stmt, _MATCH_TYPE):
        return [stmt.subject]
    out = []
    for field in stmt._fields:
        value = getattr(stmt, field, None)
        if isinstance(value, ast.expr):
            out.append(value)
        elif isinstance(value, list):
            out.extend(v for v in value if isinstance(v, ast.expr))
    return out


def _walk_same_frame(node):
    """``ast.walk`` that stays in the current execution frame.

    Lambda bodies and nested ``def``/``class`` bodies execute elsewhere;
    their default-argument expressions and decorators evaluate here and
    are still visited.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, ast.Lambda):
            stack.append(current.args)  # defaults evaluate at the def site
            continue
        if isinstance(current, _DEF_TYPES):
            stack.extend(current.decorator_list)
            if isinstance(current, _FUNC_TYPES):
                stack.append(current.args)
            continue
        stack.extend(ast.iter_child_nodes(current))


def _contains_call(expr):
    return any(
        isinstance(n, (ast.Call, ast.Await)) for n in _walk_same_frame(expr)
    )


def _may_raise(stmt):
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    if isinstance(stmt, (ast.Import, ast.ImportFrom)):
        return True
    return any(_contains_call(e) for e in evaluated_exprs(stmt))


def calls_at(stmt):
    """Every ``ast.Call`` evaluated at this statement's node."""
    calls = []
    for expr in evaluated_exprs(stmt):
        for node in _walk_same_frame(expr):
            if isinstance(node, ast.Call):
                calls.append(node)
    return calls
