"""Small path/dataflow queries over :mod:`repro.analysis.cfg` graphs.

Three primitives cover what the flow-sensitive rules need:

* :func:`exists_path` — may-query: is there *some* path from a node to a
  target, under edge/node filters?  (e.g. "can this ``wal.append``
  reach function exit without passing a commit point?")
* :func:`reachable` — the node set some start reaches;
* :func:`solve_forward` — a forward may-analysis with frozenset facts,
  union join and an edge-kind-sensitive transfer, iterated to fixpoint
  with a worklist.  Facts grow monotonically over a finite universe, so
  termination is structural.
"""

from __future__ import annotations

from repro.analysis.cfg import EXC


def exists_path(cfg, start, is_target, *, blocked=None, edge_ok=None,
                include_start_exc=False):
    """True when some path from *start* reaches a node with ``is_target``.

    The walk begins at *start*'s successors (*start* itself is never
    tested); *start*'s own exception edges are skipped unless
    ``include_start_exc``.  Nodes where ``blocked(node)`` holds are
    neither matched nor traversed through; edges failing
    ``edge_ok(src, dst, kind)`` are not taken.
    """
    stack = []
    for dst, kind in cfg.succ[start]:
        if kind == EXC and not include_start_exc:
            continue
        if edge_ok is not None and not edge_ok(start, dst, kind):
            continue
        stack.append(dst)
    seen = set()
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if blocked is not None and blocked(node):
            continue
        if is_target(node):
            return True
        for dst, kind in cfg.succ[node]:
            if edge_ok is not None and not edge_ok(node, dst, kind):
                continue
            stack.append(dst)
    return False


def reachable(cfg, start, *, edge_ok=None):
    """Every node index reachable from *start* (inclusive)."""
    seen = set()
    stack = [start]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        for dst, kind in cfg.succ[node]:
            if edge_ok is not None and not edge_ok(node, dst, kind):
                continue
            stack.append(dst)
    return seen


def solve_forward(cfg, init, transfer, *, edge_ok=None):
    """Forward may-analysis: ``{node -> frozenset fact}`` at node entry.

    ``transfer(node, fact, out_kind)`` produces the fact propagated
    along each outgoing edge — edge-kind-sensitive, so effects can
    differ on exception edges (an acquisition that raised never bound
    its resource).  Join is union; unreached nodes are absent from the
    result.
    """
    facts = {cfg.entry: frozenset(init)}
    work = [cfg.entry]
    while work:
        node = work.pop()
        fact = facts.get(node, frozenset())
        for dst, kind in cfg.succ[node]:
            if edge_ok is not None and not edge_ok(node, dst, kind):
                continue
            out = transfer(node, fact, kind)
            old = facts.get(dst)
            if old is None:
                facts[dst] = frozenset(out)
                work.append(dst)
            elif not out <= old:
                facts[dst] = old | out
                work.append(dst)
    return facts
