"""reprolint: static analysis enforcing SQLGraph's cross-layer invariants.

PRs 2-4 layered a plan cache, a WAL and a thread-per-session server over
the paper's hybrid schema; each added invariants that live in comments
and tribal knowledge.  This package machine-checks them:

* :mod:`repro.analysis.concurrency` — the ``# guarded-by: <lock>``
  annotation convention and its checker (fields read/written outside a
  ``with <lock>`` scope are findings);
* :mod:`repro.analysis.lockgraph` — a lock-acquisition-graph extractor
  with static deadlock (lock-order cycle) detection;
* :mod:`repro.analysis.hygiene` — durability/hygiene rules: physical
  table mutation outside the recovery layer, WAL appends ordered after a
  commit point, broad exception handlers that swallow errors, mutable
  default arguments;
* :mod:`repro.analysis.sqlcheck` — the SQL/translation invariant checker
  running every Table-8 golden translation through the in-repo SQL
  parser (CTE well-formedness, parameter-slot bookkeeping, ``VID >= 0``
  lazy-delete filters, adjacency column budget);
* :mod:`repro.analysis.docs` — the markdown docs link/reference checker
  (formerly ``tools/check_docs_links.py``).

PR 10 grew a flow-sensitive engine — :mod:`repro.analysis.cfg` builds
per-function control-flow graphs (branches, loops, ``with``,
``try/except/finally``, return/raise edges) and
:mod:`repro.analysis.dataflow` runs path queries and forward gen/kill
analyses over them — plus the rule packs on top:

* :mod:`repro.analysis.walflow` — WAL commit-point reachability (the
  PR-9 stored-procedure durability bug, as a checked invariant);
* :mod:`repro.analysis.release` — locks/sockets/files acquired outside
  ``with`` must be released on every path, exception edges included;
* :mod:`repro.analysis.wirecheck` — wire-protocol error-code
  conformance: declared, classified retryable-or-not, no dead codes,
  relays preserve the original code;
* the interprocedural ``# holds:`` caller check lives with its
  intra-class sibling in :mod:`repro.analysis.concurrency`.

The framework (rule registry, suppressions, baseline, reports) lives in
:mod:`repro.analysis.core`; ``tools/reprolint.py`` is the CLI driver and
the single analysis entry point.  See docs/ANALYSIS.md for the rule
catalog and annotation conventions.
"""

from repro.analysis.core import (  # noqa: F401
    Finding,
    LintContext,
    Report,
    all_rules,
    lint_paths,
    load_baseline,
    registered_rule,
    rule,
)

# importing the rule modules registers their rules
from repro.analysis import concurrency  # noqa: F401,E402
from repro.analysis import docs  # noqa: F401,E402
from repro.analysis import hygiene  # noqa: F401,E402
from repro.analysis import lockgraph  # noqa: F401,E402
from repro.analysis import release  # noqa: F401,E402
from repro.analysis import sqlcheck  # noqa: F401,E402
from repro.analysis import walflow  # noqa: F401,E402
from repro.analysis import wirecheck  # noqa: F401,E402
