"""Error-code conformance across the wire-protocol boundary.

The serving tier speaks typed errors: ``server/protocol.py`` declares
the code constants (``NAME = "NAME"``), partitions them into
``RETRYABLE_CODES`` / ``NON_RETRYABLE_CODES``, and every server /
sharding-coordinator emission plus the client's retry classifier keys
off them.  The contract has four ways to rot, each a check here:

* a code is **declared but unclassified** (or classified twice, or a
  classification names an undeclared code) — the client's
  ``retryable`` decision for it would be accidental;
* an emission site (``WireError(CODE, ...)``, a ``WireError`` subclass
  constructor, ``error_payload(CODE, ...)``) uses a code the protocol
  never **declared** — the client sees an unknown code;
* a declared code is **dead**: never referenced outside its definition
  and the classification sets by any server/sharding/client module;
* a scatter-gather **relay flattens** the original code: an ``except
  <WireError-family>`` handler that raises a fresh wire error with a
  fixed code instead of propagating ``exc.code``.

Pure AST — no imports of the checked modules — so the same rule runs
over regression fixtures.  Scope: files under ``server/`` or
``sharding/`` plus ``client.py``; silent when no ``server/protocol.py``
is in the linted set.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, rule

RULE = "error-code-conformance"

_CLASSIFICATION_SETS = ("RETRYABLE_CODES", "NON_RETRYABLE_CODES")


def _in_scope(relative):
    slashed = "/" + relative
    return (
        "/server/" in slashed
        or "/sharding/" in slashed
        or relative.endswith("client.py")
    )


def _frozenset_members(value):
    """Names inside ``frozenset({A, B, ...})`` (None when not that shape).

    A bare ``frozenset()`` is a declared-but-empty set, not a miss.
    """
    if not (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "frozenset"
        and len(value.args) <= 1
    ):
        return None
    if not value.args:
        return []
    container = value.args[0]
    if not isinstance(container, (ast.Set, ast.Tuple, ast.List)):
        return None
    return [e.id for e in container.elts if isinstance(e, ast.Name)]


def _wire_classes(files):
    """``WireError`` plus every class in *files* deriving from one."""
    bases_of = {}
    for source_file in files:
        for node in ast.walk(source_file.tree):
            if isinstance(node, ast.ClassDef):
                names = set()
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        names.add(base.id)
                    elif isinstance(base, ast.Attribute):
                        names.add(base.attr)
                bases_of[node.name] = names
    wire = {"WireError"}
    for _ in range(len(bases_of) + 1):
        grown = {
            name for name, bases in bases_of.items()
            if bases & wire and name not in wire
        }
        if not grown:
            break
        wire |= grown
    return wire


def _first_code_arg(call):
    """``(kind, value)`` of a call's first code argument, or None.

    kind 'name' for an uppercase Name, 'literal' for a string constant;
    anything dynamic (a variable, ``exc.code``) returns None — the
    checker only judges what it can read.
    """
    arg = None
    if call.args:
        arg = call.args[0]
    else:
        for keyword in call.keywords:
            if keyword.arg == "code":
                arg = keyword.value
                break
    if isinstance(arg, ast.Name) and arg.id.isupper():
        return ("name", arg.id)
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return ("literal", arg.value)
    return None


@rule(
    RULE,
    scope="project",
    description="every error code emitted by server/sharding exists in "
    "protocol.py and is classified retryable-or-not; relays keep the code",
)
def check_error_code_conformance(context):
    protocol = None
    for source_file in context.files:
        if source_file.relative.endswith("server/protocol.py"):
            protocol = source_file
            break
    if protocol is None:
        return []
    findings = []

    declared = {}        # NAME -> (value, lineno)
    classification = {}  # set name -> (members, span)
    for node in protocol.tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            continue
        name = node.targets[0].id
        if name in _CLASSIFICATION_SETS:
            members = _frozenset_members(node.value)
            if members is not None:
                last = getattr(node, "end_lineno", node.lineno) or node.lineno
                classification[name] = (members, (node.lineno, last))
        elif name.isupper() and not name.startswith("_") \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            declared[name] = (node.value.value, node.lineno)

    for set_name in _CLASSIFICATION_SETS:
        if set_name not in classification:
            findings.append(Finding(
                RULE, protocol.relative, 1,
                f"protocol.py does not define {set_name} — every declared "
                f"error code must be classified retryable or not",
                symbol=f"missing:{set_name}",
            ))
    retryable = set(classification.get("RETRYABLE_CODES", ((), None))[0])
    non_retryable = set(
        classification.get("NON_RETRYABLE_CODES", ((), None))[0])

    for name in sorted(retryable | non_retryable):
        if name not in declared:
            findings.append(Finding(
                RULE, protocol.relative, 1,
                f"classification sets reference undeclared code {name}",
                symbol=f"undeclared:{name}",
            ))
    for name in sorted(retryable & non_retryable):
        findings.append(Finding(
            RULE, protocol.relative, declared.get(name, ("", 1))[1],
            f"code {name} is classified both retryable and non-retryable",
            symbol=f"overlap:{name}",
        ))
    if all(s in classification for s in _CLASSIFICATION_SETS):
        for name, (_value, line) in sorted(declared.items()):
            if name not in retryable and name not in non_retryable:
                findings.append(Finding(
                    RULE, protocol.relative, line,
                    f"declared code {name} is in neither RETRYABLE_CODES "
                    f"nor NON_RETRYABLE_CODES",
                    symbol=f"unclassified:{name}",
                ))

    scope = [f for f in context.files if _in_scope(f.relative)]
    wire = _wire_classes(scope)
    excluded_spans = [span for _members, span in classification.values()]

    def _counts_as_use(source_file, node, name, value):
        line = getattr(node, "lineno", 0)
        if source_file is protocol:
            if line == declared[name][1]:
                return False
            if any(first <= line <= last for first, last in excluded_spans):
                return False
        if isinstance(node, ast.Name):
            return node.id == name and isinstance(node.ctx, ast.Load)
        if isinstance(node, ast.Constant):
            return node.value == value
        return False

    for name, (value, line) in sorted(declared.items()):
        used = any(
            _counts_as_use(source_file, node, name, value)
            for source_file in scope
            for node in ast.walk(source_file.tree)
        )
        if not used:
            findings.append(Finding(
                RULE, protocol.relative, line,
                f"declared code {name} is never emitted or matched by any "
                f"server/sharding/client module",
                symbol=f"dead:{name}",
            ))

    declared_values = {value for value, _line in declared.values()}
    for source_file in scope:
        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            emits = (
                isinstance(fn, ast.Name)
                and (fn.id in wire or fn.id == "error_payload")
            )
            if not emits:
                continue
            code = _first_code_arg(node)
            if code is None:
                continue
            kind, spelled = code
            known = spelled in declared if kind == "name" \
                else spelled in declared_values
            if not known:
                findings.append(Finding(
                    RULE, source_file.relative, node.lineno,
                    f"error code {spelled!r} is not declared in "
                    f"server/protocol.py",
                    symbol=f"unknown:{spelled}",
                ))

        for handler in ast.walk(source_file.tree):
            if not isinstance(handler, ast.ExceptHandler) \
                    or handler.type is None:
                continue
            caught = handler.type.elts \
                if isinstance(handler.type, ast.Tuple) else [handler.type]
            if not any(isinstance(t, ast.Name) and t.id in wire
                       for t in caught):
                continue
            for stmt in ast.walk(handler):
                if not (isinstance(stmt, ast.Raise)
                        and isinstance(stmt.exc, ast.Call)
                        and isinstance(stmt.exc.func, ast.Name)
                        and stmt.exc.func.id in wire):
                    continue
                code = _first_code_arg(stmt.exc)
                if code is None:
                    continue  # propagates exc.code or similar — fine
                findings.append(Finding(
                    RULE, source_file.relative, stmt.lineno,
                    f"relay catches a wire error but raises "
                    f"{stmt.exc.func.id} with fixed code {code[1]} — "
                    f"propagate the original exc.code",
                    symbol=f"relay:{stmt.exc.func.id}:{code[1]}",
                ))
    return findings
