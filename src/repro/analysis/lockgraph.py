"""Static deadlock detection: the lock-acquisition graph.

Two threads deadlock when they acquire the same locks in opposite
orders.  This rule extracts a *may-acquire-while-holding* graph from the
whole package and reports any cycle in it:

* **nodes** are locks, identified as ``Class.attr`` for every attribute
  assigned a ``threading.Lock()`` / ``RLock()`` / ``Condition()`` (and
  for function-local lock variables, ``path:name``).  All table-level
  reader/writer locks handed out by ``LockManager`` — including the
  catalog lock — collapse into one ``<table-locks>`` node, because
  ``LockManager.acquire`` takes them in global name order, which makes
  ordering *within* that family safe by construction (self-edges on the
  node are therefore ignored);
* **edges** ``A -> B`` mean: some code path acquires B (directly via
  ``with``, or transitively through calls) while holding A.

Call resolution is deliberately conservative: ``self.method()`` resolves
within the class, ``self.attr.method()`` / ``name.method()`` resolve
only when the receiver was somewhere assigned ``ClassName(...)`` for a
class defined in the linted tree (and unambiguously so), and bare
``name()`` resolves to a function in the same module.  Unresolvable
calls contribute no edges — the graph can miss edges through dynamic
dispatch, but an edge it *does* report corresponds to a concrete code
path.  ``ReadWriteLock.acquire_read`` / ``acquire_write`` call sites are
table-lock acquisitions regardless of receiver (the method names are
unique to that class).
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, rule

#: merged node for every LockManager-issued reader/writer lock
TABLE_LOCKS = "<table-locks>"

_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}
_RWLOCK_METHODS = {"acquire_read", "acquire_write"}


def _is_lock_factory(call):
    """``threading.Lock()`` / ``Lock()`` (imported name) and friends."""
    if not isinstance(call, ast.Call):
        return False
    fn = call.func
    if isinstance(fn, ast.Attribute):
        return fn.attr in _LOCK_FACTORIES and isinstance(fn.value, ast.Name) \
            and fn.value.id == "threading"
    return isinstance(fn, ast.Name) and fn.id in _LOCK_FACTORIES


def _called_class(call):
    """``ClassName(...)`` -> ``'ClassName'`` (else None)."""
    if isinstance(call, ast.Call) and isinstance(call.func, ast.Name):
        return call.func.id
    return None


class _Function:
    """One analyzable function with its acquisition/call summary."""

    __slots__ = ("key", "node", "source_file", "class_name",
                 "direct", "calls", "may_acquire")

    def __init__(self, key, node, source_file, class_name):
        self.key = key
        self.node = node
        self.source_file = source_file
        self.class_name = class_name
        self.direct = set()   # lock nodes acquired anywhere in the body
        self.calls = set()    # resolved callee keys
        self.may_acquire = set()


class Package:
    """Package-wide indexes the extractor resolves against.

    Also the project call-graph substrate for the flow-sensitive rules
    (:mod:`repro.analysis.walflow`, the interprocedural guarded-by
    checker): ``functions`` maps ``Class.method`` / ``relpath:func``
    keys to :class:`_Function` entries and :meth:`resolve_call` performs
    the conservative name resolution described in the module docstring.
    """

    def __init__(self, context):
        self.functions = {}        # key -> _Function
        self.class_locks = {}      # class name -> {attr -> lock node}
        self.class_methods = {}    # class name -> {method -> key}
        self.module_functions = {} # relpath -> {name -> key}
        self.attr_owner = {}       # attr/var name -> class name (unambiguous)
        self._ambiguous = set()
        self._index(context)

    def _index(self, context):
        for source_file in context.files:
            module = self.module_functions.setdefault(source_file.relative, {})
            for node in source_file.tree.body:
                if isinstance(node, ast.FunctionDef):
                    key = f"{source_file.relative}:{node.name}"
                    module[node.name] = key
                    self.functions[key] = _Function(
                        key, node, source_file, None)
                elif isinstance(node, ast.ClassDef):
                    self._index_class(source_file, node)
        # second sweep: receiver map from every `x = ClassName(...)`
        for source_file in context.files:
            for node in ast.walk(source_file.tree):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    self._note_receiver(node.targets[0], node.value)

    def _index_class(self, source_file, class_node):
        methods = self.class_methods.setdefault(class_node.name, {})
        locks = self.class_locks.setdefault(class_node.name, {})
        for item in class_node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            key = f"{class_node.name}.{item.name}"
            methods[item.name] = key
            self.functions[key] = _Function(
                key, item, source_file, class_node.name)
            for statement in ast.walk(item):
                if isinstance(statement, ast.Assign):
                    for target in statement.targets:
                        attr = _self_attr(target)
                        if attr and _is_lock_factory(statement.value):
                            locks[attr] = f"{class_node.name}.{attr}"
                        elif attr and _called_class(statement.value) \
                                == "ReadWriteLock":
                            locks[attr] = TABLE_LOCKS

    def _note_receiver(self, target, value):
        class_name = _called_class(value)
        if class_name not in self.class_methods:
            return
        name = _self_attr(target) if isinstance(target, ast.Attribute) \
            else (target.id if isinstance(target, ast.Name) else None)
        if not name or name in self._ambiguous:
            return
        existing = self.attr_owner.get(name)
        if existing is not None and existing != class_name:
            del self.attr_owner[name]
            self._ambiguous.add(name)
        elif existing is None:
            self.attr_owner[name] = class_name

    # --- resolution -------------------------------------------------

    def resolve_call(self, function, call):
        """A Call node -> callee key, or None when unresolvable."""
        fn = call.func
        if isinstance(fn, ast.Name):
            module = self.module_functions.get(function.source_file.relative, {})
            return module.get(fn.id)
        if not isinstance(fn, ast.Attribute):
            return None
        receiver = fn.value
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            if function.class_name:
                return self.class_methods.get(
                    function.class_name, {}).get(fn.attr)
            return None
        owner = None
        if isinstance(receiver, ast.Name):
            owner = self.attr_owner.get(receiver.id)
        elif isinstance(receiver, ast.Attribute):
            attr = _self_attr(receiver)
            owner = self.attr_owner.get(attr) if attr else None
        if owner:
            return self.class_methods.get(owner, {}).get(fn.attr)
        return None

    def lock_node(self, function, expr):
        """The lock a ``with <expr>:`` acquires, or None."""
        if function.class_name:
            attr = _self_attr(expr)
            if attr:
                return self.class_locks.get(
                    function.class_name, {}).get(attr)
        if isinstance(expr, ast.Name):
            return self._local_lock(function, expr.id)
        return None

    def _local_lock(self, function, name):
        for statement in ast.walk(function.node):
            if isinstance(statement, ast.Assign) \
                    and _is_lock_factory(statement.value):
                for target in statement.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        return f"{function.source_file.relative}:{name}"
        return None


_Package = Package  # historical name, kept for callers predating the rename


def _self_attr(node):
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _call_acquires(package, function, call):
    """Locks a call may acquire: table-lock entry points + callee summary."""
    acquired = set()
    fn = call.func
    if isinstance(fn, ast.Attribute) and fn.attr in _RWLOCK_METHODS:
        acquired.add(TABLE_LOCKS)
    callee = package.resolve_call(function, call)
    if callee is not None:
        acquired |= package.functions[callee].may_acquire
    return acquired


def build_graph(context):
    """``(package, edges)`` where edges maps (A, B) -> example (path, line)."""
    package = _Package(context)

    # summaries: direct acquisitions + resolved calls, then a fixpoint
    for function in package.functions.values():
        for node in ast.walk(function.node):
            if isinstance(node, ast.With):
                for item in node.items:
                    lock = package.lock_node(function, item.context_expr)
                    if lock:
                        function.direct.add(lock)
            elif isinstance(node, ast.Call):
                fn = node.func
                if isinstance(fn, ast.Attribute) and fn.attr in _RWLOCK_METHODS:
                    function.direct.add(TABLE_LOCKS)
                callee = package.resolve_call(function, node)
                if callee is not None:
                    function.calls.add(callee)
        function.may_acquire = set(function.direct)

    changed = True
    while changed:
        changed = False
        for function in package.functions.values():
            for callee in function.calls:
                extra = package.functions[callee].may_acquire \
                    - function.may_acquire
                if extra:
                    function.may_acquire |= extra
                    changed = True

    # edges: B acquired (directly or through a call) while A is held
    edges = {}

    def note(held, acquired, source_file, line):
        for a in held:
            for b in acquired:
                if a == b and a == TABLE_LOCKS:
                    continue  # name-ordered within the family
                edges.setdefault((a, b), (source_file.relative, line))

    def walk(function, node, held):
        if isinstance(node, ast.With):
            acquired = set()
            for item in node.items:
                walk(function, item.context_expr, held)
                lock = package.lock_node(function, item.context_expr)
                if lock:
                    acquired.add(lock)
            note(held, acquired, function.source_file, node.lineno)
            for child in node.body:
                walk(function, child, held | acquired)
            return
        if isinstance(node, ast.Call):
            note(held, _call_acquires(package, function, node),
                 function.source_file, node.lineno)
        for child in ast.iter_child_nodes(node):
            walk(function, child, held)

    for function in package.functions.values():
        for statement in function.node.body:
            walk(function, statement, set())
    return package, edges


def _cycles(edges):
    """Strongly connected components with a cycle (Tarjan, iterative)."""
    graph = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    components = []
    counter = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(sorted(graph[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(graph[successor]))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or (node, node) in edges:
                    components.append(sorted(component))
    return components


@rule(
    "lock-order",
    scope="project",
    description="the package-wide lock-acquisition graph must be acyclic "
    "(cycles are potential deadlocks)",
)
def check_lock_order(context):
    _, edges = build_graph(context)
    findings = []
    for component in _cycles(edges):
        members = set(component)
        involved = sorted(
            (a, b) for (a, b) in edges if a in members and b in members
        )
        detail = "; ".join(
            f"{a} -> {b} at {edges[(a, b)][0]}:{edges[(a, b)][1]}"
            for a, b in involved
        )
        path, line = edges[involved[0]]
        findings.append(Finding(
            "lock-order", path, line,
            f"potential lock-order cycle among {{{', '.join(component)}}}: "
            f"{detail}",
            symbol="<->".join(component),
        ))
    return findings
