"""Release-on-all-paths: locks, sockets and files must not leak.

A resource acquired outside a ``with`` block must reach a release on
*every* path out of the acquiring function — including exception edges.
The checker runs a forward may-analysis over each function's CFG
(:mod:`repro.analysis.cfg`): the fact set holds the resources still
*live* along some path; an acquisition gens its resource (except on the
acquisition's own exception edge — a constructor that raised bound
nothing), and any of the following kills it:

* an explicit release: ``r.close()`` / ``r.release()`` /
  ``r.__exit__()``;
* ``r`` passed bare to any call (``LockManager.release(token)``,
  handing the socket to another owner, raising it inside an error);
* ``r`` stored anywhere (``self._sock = r``, a container, a rebind) or
  returned/yielded — ownership escapes the function and is someone
  else's contract.

Plain method calls on the resource (``r.settimeout(...)``) are ordinary
use and keep it live.  Resources that survive to the normal ``exit``
node are reported as normal-path leaks; to ``raise_exit`` as
exception-path leaks (the fix is usually ``try/finally`` or ``with``).

Tracked acquisitions (single-name assignments only):

* ``name = <anything>.acquire(...)`` — lock tokens;
* ``name = open(...)`` / ``name = <x>.open(...)`` — files;
* ``name = socket.socket(...)`` / ``socket.create_connection(...)``;
* ``name = self.<helper>(...)`` where ``<helper>`` is a same-class
  method whose body is ``return <x>.acquire(...)`` (a proxy acquirer,
  e.g. ``GraphProcedures._locked``).

Also tracked: *unbound* ``<recv>.acquire()`` expression statements,
matched to ``<recv>.release()`` on the same spelled receiver.
``__enter__`` methods are exempt (the paired ``__exit__`` releases
cross-method by protocol).
"""

from __future__ import annotations

import ast

from repro.analysis import cfg as cfglib
from repro.analysis import dataflow
from repro.analysis.core import Finding, rule
from repro.analysis.hygiene import _qualnames

RULE = "release-on-all-paths"

_RELEASE_ATTRS = {"close", "release", "__exit__"}


def _proxy_acquirers(tree):
    """Per class: method names whose body returns ``<x>.acquire(...)``."""
    proxies = {}
    for class_node in ast.walk(tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        names = set()
        for item in class_node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(item):
                if (
                    isinstance(stmt, ast.Return)
                    and isinstance(stmt.value, ast.Call)
                    and isinstance(stmt.value.func, ast.Attribute)
                    and stmt.value.func.attr == "acquire"
                ):
                    names.add(item.name)
        if names:
            proxies[class_node.name] = names
    return proxies


def _acquisition_kind(value, proxy_names):
    """What resource an assigned expression acquires, or None."""
    if not isinstance(value, ast.Call):
        return None
    fn = value.func
    if isinstance(fn, ast.Attribute):
        if fn.attr == "acquire":
            return "lock"
        if fn.attr == "open":
            return "file"
        if fn.attr in ("socket", "create_connection") \
                and isinstance(fn.value, ast.Name) and fn.value.id == "socket":
            return "socket"
        if (
            isinstance(fn.value, ast.Name) and fn.value.id == "self"
            and fn.attr in proxy_names
        ):
            return "lock"
        return None
    if isinstance(fn, ast.Name) and fn.id == "open":
        return "file"
    return None


class _Resource:
    __slots__ = ("rid", "name", "kind", "node", "line", "dump")

    def __init__(self, rid, name, kind, node, line, dump=None):
        self.rid = rid
        self.name = name  # bound local name, or None for unbound acquires
        self.kind = kind
        self.node = node  # acquiring CFG node index
        self.line = line
        self.dump = dump  # spelled receiver (unbound acquires only)


def _bare_uses(expr, name):
    """Does *name* occur in *expr* outside attribute-receiver position?"""
    stack = [expr]
    while stack:
        node = stack.pop()
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == name
        ):
            continue  # `name.attr` — receiver use, not an escape
        if isinstance(node, ast.Name) and node.id == name:
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


def _check_function(source_file, func, class_name, proxies):
    if func.name == "__enter__":
        return []
    proxy_names = proxies.get(class_name, set()) if class_name else set()
    graph = cfglib.build_cfg(func)

    resources = []
    for node in graph.nodes:
        stmt = node.stmt
        if stmt is None:
            continue
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            kind = _acquisition_kind(stmt.value, proxy_names)
            if kind:
                resources.append(_Resource(
                    len(resources), stmt.targets[0].id, kind,
                    node.index, stmt.lineno))
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if isinstance(call.func, ast.Attribute) \
                    and call.func.attr == "acquire":
                resources.append(_Resource(
                    len(resources), None, "lock", node.index, stmt.lineno,
                    dump=ast.dump(call.func.value)))
    if not resources:
        return []

    gen = {}
    kill = {}
    for node in graph.nodes:
        stmt = node.stmt
        if stmt is None:
            continue
        exprs = cfglib.evaluated_exprs(stmt)
        calls = cfglib.calls_at(stmt)
        for res in resources:
            if node.index == res.node:
                gen.setdefault(node.index, set()).add(res.rid)
                # a rebinding acquisition kills the previous generation
                kill.setdefault(node.index, set()).add(res.rid)
                continue
            if res.name is not None:
                released = any(
                    isinstance(c.func, ast.Attribute)
                    and c.func.attr in _RELEASE_ATTRS
                    and isinstance(c.func.value, ast.Name)
                    and c.func.value.id == res.name
                    for c in calls
                )
                if released or any(_bare_uses(e, res.name) for e in exprs):
                    kill.setdefault(node.index, set()).add(res.rid)
            else:
                if any(
                    isinstance(c.func, ast.Attribute)
                    and c.func.attr in _RELEASE_ATTRS
                    and ast.dump(c.func.value) == res.dump
                    for c in calls
                ):
                    kill.setdefault(node.index, set()).add(res.rid)

    def transfer(node, fact, kind):
        out = fact - frozenset(kill.get(node, ()))
        if kind != cfglib.EXC:
            out = out | frozenset(gen.get(node, ()))
        return out

    facts = dataflow.solve_forward(graph, frozenset(), transfer)
    leaked_exit = facts.get(graph.exit, frozenset())
    leaked_raise = facts.get(graph.raise_exit, frozenset())

    qualnames = _qualnames(source_file.tree)
    owner = qualnames.get(func, func.name)
    findings = []
    for res in resources:
        what = res.name or "it"
        where = None
        if res.rid in leaked_exit:
            where = "a normal path"
        elif res.rid in leaked_raise:
            where = "an exception path (release in a finally, or use with)"
        if where is None:
            continue
        label = res.name or f"{res.kind}@{res.line}"
        findings.append(Finding(
            RULE, source_file.relative, res.line,
            f"{owner} acquires a {res.kind} but {what} may not be "
            f"released on {where}",
            symbol=f"{owner}:{label}",
        ))
    return findings


@rule(
    RULE,
    scope="file",
    description="locks/sockets/files acquired outside 'with' must reach a "
    "release on every path out of the function, including exception edges",
)
def check_release_on_all_paths(source_file):
    proxies = _proxy_acquirers(source_file.tree)
    findings = []

    def visit(node, class_name):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(_check_function(
                    source_file, child, class_name, proxies))
                visit(child, None)  # nested defs have no class receiver
            elif isinstance(child, ast.ClassDef):
                visit(child, child.name)
            else:
                visit(child, class_name)

    visit(source_file.tree, None)
    return findings
