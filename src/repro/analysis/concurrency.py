"""The ``# guarded-by`` annotation convention and its checker.

Convention
----------

A field that must only be touched while holding a lock is annotated on
its ``__init__`` assignment::

    self.slow_query_log = []  # guarded-by: _mutation_lock

The named lock is another attribute of the same object (a
``threading.Lock`` / ``Condition`` or compatible context manager).  The
checker then walks every other method of the class and reports reads or
writes of ``self.<field>`` that are not lexically inside a
``with self.<lock>:`` block.

Helpers that are *called with the lock already held* declare it on their
``def`` line::

    def _fsync_locked(self):  # holds: _lock

which treats the whole body as guarded.  ``__init__`` itself is exempt
(construction is single-threaded by definition), as is any access
suppressed with ``# reprolint: disable=guarded-by``.

Scope and honesty
-----------------

The checker is intentionally *intra-class*: only ``self.<field>``
accesses inside the defining class are checked.  Cross-object accesses
(``store.slow_query_log`` from a test) and string-based access
(``getattr``/``setattr``) are invisible to it — the annotation documents
the locking contract; the checker enforces the contract where the AST
can see it.  Nested functions and lambdas inherit the held-lock set of
their definition site (true for the ``Condition.wait_for`` lambdas this
codebase uses; a closure stashed and called later would evade this).
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import Finding, rule

GUARDED_BY = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
HOLDS = re.compile(r"#\s*holds:\s*([A-Za-z_][A-Za-z0-9_, ]*)")


def _self_attr(node):
    """``self.X`` -> ``'X'`` (else None)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _annotation_on(source_file, node, pattern):
    """First *pattern* match in the comments spanning *node*'s lines.

    A comment-only line immediately above the statement also counts, for
    assignments too long to annotate inline.
    """
    last = getattr(node, "end_lineno", node.lineno) or node.lineno
    first = node.lineno
    if first > 1:
        above = source_file.lines[first - 2].strip()
        if above.startswith("#"):
            first -= 1
    for number in range(first, last + 1):
        match = pattern.search(source_file.line_comment(number))
        if match:
            return match
    return None


def guarded_fields(source_file, class_node):
    """``{field: lock}`` from ``# guarded-by`` annotations in ``__init__``."""
    fields = {}
    for item in class_node.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            for statement in ast.walk(item):
                if isinstance(statement, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        statement.targets
                        if isinstance(statement, ast.Assign)
                        else [statement.target]
                    )
                    names = [_self_attr(t) for t in targets]
                    match = _annotation_on(source_file, statement, GUARDED_BY)
                    if match:
                        for name in names:
                            if name:
                                fields[name] = match.group(1)
    return fields


def held_locks_declared(source_file, function_node):
    """Locks a ``# holds:`` marker on the ``def`` line declares held."""
    comment = source_file.line_comment(function_node.lineno)
    match = HOLDS.search(comment)
    if not match:
        return set()
    return {name.strip() for name in match.group(1).split(",") if name.strip()}


@rule(
    "guarded-by",
    scope="file",
    description="fields annotated '# guarded-by: <lock>' must be accessed "
    "inside 'with self.<lock>:' (or a '# holds: <lock>' helper)",
)
def check_guarded_by(source_file):
    findings = []
    for class_node in source_file.tree.body:
        if not isinstance(class_node, ast.ClassDef):
            continue
        fields = guarded_fields(source_file, class_node)
        if not fields:
            continue
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue
            declared = held_locks_declared(source_file, method)
            findings.extend(
                _check_method(source_file, class_node, method, fields, declared)
            )
    return findings


@rule(
    "guarded-by-interproc",
    scope="file",
    description="calling a '# holds: <lock>' helper requires actually "
    "holding the lock at the call site (inferred through undeclared "
    "intermediate helpers)",
)
def check_guarded_by_interproc(source_file):
    """The caller side of the ``# holds:`` contract.

    :func:`check_guarded_by` trusts a ``# holds: <lock>`` declaration
    and treats the helper body as guarded; nothing checked that callers
    *live up to* it.  This rule walks every same-class ``self.helper()``
    call site and requires the declared locks to be held there —
    lexically (``with self.<lock>:``), by the caller's own ``# holds:``
    declaration, or by *inference*: an undeclared method called from
    several places inherits the intersection of its callers' held sets
    (narrowing fixpoint from TOP), so a helper only ever reached with
    the lock held passes its context through without annotation.
    ``__init__`` call sites are exempt (construction is
    single-threaded).
    """
    findings = []
    for class_node in source_file.tree.body:
        if isinstance(class_node, ast.ClassDef):
            findings.extend(_check_class_interproc(source_file, class_node))
    return findings


def _self_call_sites(method, declared):
    """``(callee, lexically-held, line)`` for every self-call in *method*."""
    sites = []

    def visit(node, held):
        if isinstance(node, ast.With):
            acquired = set()
            for item in node.items:
                name = _self_attr(item.context_expr)
                if name:
                    acquired.add(name)
                visit(item.context_expr, held)
            for child in node.body:
                visit(child, held | acquired)
            return
        if isinstance(node, ast.Call):
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Name)
                and fn.value.id == "self"
            ):
                sites.append((fn.attr, frozenset(held), node.lineno))
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for statement in method.body:
        visit(statement, set(declared))
    return sites


def _check_class_interproc(source_file, class_node):
    methods = {
        item.name: item
        for item in class_node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    declared = {
        name: held_locks_declared(source_file, node)
        for name, node in methods.items()
    }
    if not any(declared.values()):
        return []

    call_sites = {
        name: _self_call_sites(node, declared[name])
        for name, node in methods.items()
        if name != "__init__"
    }

    # infer held sets for undeclared methods: intersection over caller
    # contexts, narrowing from TOP (None) until stable
    inferred = {
        name: None for name in methods
        if not declared[name]
        and any(callee == name
                for sites in call_sites.values()
                for callee, _held, _line in sites)
    }
    for _ in range(len(methods) + 1):
        changed = False
        for name in inferred:
            incoming = None
            for caller, sites in call_sites.items():
                effective_caller = declared[caller] | (
                    inferred.get(caller) or set())
                for callee, held, _line in sites:
                    if callee != name:
                        continue
                    at_site = held | effective_caller
                    incoming = at_site if incoming is None \
                        else incoming & at_site
            incoming = set() if incoming is None else incoming
            if inferred[name] is None or incoming != inferred[name]:
                if inferred[name] is None or incoming < inferred[name]:
                    inferred[name] = incoming
                    changed = True
        if not changed:
            break

    findings = []
    for caller, sites in call_sites.items():
        effective_caller = declared[caller] | (inferred.get(caller) or set())
        for callee, held, line in sites:
            required = declared.get(callee) or set()
            missing = required - held - effective_caller
            if missing:
                findings.append(Finding(
                    "guarded-by-interproc",
                    source_file.relative,
                    line,
                    f"{class_node.name}.{caller} calls {callee} "
                    f"(# holds: {', '.join(sorted(required))}) without "
                    f"holding {', '.join(sorted(missing))}",
                    symbol=f"{class_node.name}.{caller}->{callee}",
                ))
    return findings


def _check_method(source_file, class_node, method, fields, held):
    findings = []

    def visit(node, held):
        if isinstance(node, ast.With):
            acquired = set()
            for item in node.items:
                name = _self_attr(item.context_expr)
                if name:
                    acquired.add(name)
                visit(item.context_expr, held)
                if item.optional_vars is not None:
                    visit(item.optional_vars, held)
            for child in node.body:
                visit(child, held | acquired)
            return
        if isinstance(node, ast.Attribute):
            name = _self_attr(node)
            if name in fields and fields[name] not in held:
                findings.append(Finding(
                    "guarded-by",
                    source_file.relative,
                    node.lineno,
                    f"field '{name}' is guarded-by '{fields[name]}' but "
                    f"{class_node.name}.{method.name} accesses it without "
                    f"holding the lock",
                    symbol=f"{class_node.name}.{method.name}:{name}",
                ))
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for statement in method.body:
        visit(statement, set(held))
    return findings
