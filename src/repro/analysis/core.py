"""The reprolint framework: rules, findings, suppressions, baselines.

A *rule* is a named checker registered with the :func:`rule` decorator.
Two shapes exist:

* **file rules** (``scope="file"``) get one parsed module at a time as a
  :class:`SourceFile` and yield :class:`Finding` objects;
* **project rules** (``scope="project"``) run once per invocation with
  the whole :class:`LintContext` (every parsed file plus the repo root)
  — the lock-order graph, the SQL invariant corpus and the docs checker
  are project rules.

Findings are filtered through two mechanisms:

* **suppressions** — ``# reprolint: disable=RULE[,RULE...] [-- reason]``
  on the offending line (or any line the offending statement spans)
  silences those rules for that statement;
* **baseline** — a JSON list of finding fingerprints (see
  :meth:`Finding.fingerprint`); findings present in the baseline are
  reported as *baselined* and do not affect the exit status.  The
  driver's ``--write-baseline`` regenerates it, which is how a rule is
  introduced over a codebase with pre-existing violations.

Fingerprints intentionally omit line numbers so unrelated edits do not
churn the baseline.
"""

from __future__ import annotations

import ast
import json
import pathlib
import re

#: ``# reprolint: disable=rule-a,rule-b -- optional justification``
SUPPRESSION = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\- ]+?)(?:\s*--.*)?$"
)

_RULES: dict[str, "Rule"] = {}


class Rule:
    """A registered checker: name, scope, description, callable."""

    __slots__ = ("name", "scope", "description", "check")

    def __init__(self, name, scope, description, check):
        self.name = name
        self.scope = scope  # 'file' | 'project'
        self.description = description
        self.check = check


def rule(name, scope="file", description=""):
    """Decorator registering a checker under *name*."""

    def register(fn):
        if name in _RULES:
            raise ValueError(f"duplicate rule {name!r}")
        _RULES[name] = Rule(name, scope, description or (fn.__doc__ or "").strip(),
                            fn)
        return fn

    return register


def all_rules():
    """Registered rules by name (import repro.analysis to populate)."""
    return dict(_RULES)


def registered_rule(name):
    return _RULES[name]


class Finding:
    """One diagnostic: rule, location, message, stable fingerprint."""

    __slots__ = ("rule", "path", "line", "message", "symbol", "baselined")

    def __init__(self, rule, path, line, message, symbol=None):
        self.rule = rule
        self.path = path  # repo-relative, posix separators
        self.line = line
        self.message = message
        #: stable anchor for the fingerprint (e.g. ``Class.field``); falls
        #: back to the message so every finding fingerprints somehow
        self.symbol = symbol
        self.baselined = False

    def fingerprint(self):
        return f"{self.rule}:{self.path}:{self.symbol or self.message}"

    def as_dict(self):
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "baselined": self.baselined,
        }

    def render(self):
        mark = " [baselined]" if self.baselined else ""
        return f"{self.path}:{self.line}: {self.rule}: {self.message}{mark}"

    def __repr__(self):
        return f"Finding({self.render()!r})"


class SourceFile:
    """One parsed python module plus its suppression table."""

    def __init__(self, path, relative, source):
        self.path = path
        self.relative = relative  # repo-relative posix string
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source)
        #: line number -> set of rule names disabled on that line
        self.suppressions = self._parse_suppressions()

    def _parse_suppressions(self):
        table = {}
        for number, line in enumerate(self.lines, start=1):
            match = SUPPRESSION.search(line)
            if match:
                names = {
                    name.strip()
                    for name in match.group(1).split(",")
                    if name.strip()
                }
                table[number] = names
        return table

    def suppressed(self, rule_name, first_line, last_line=None):
        """Is *rule_name* disabled on any line of the statement span?"""
        last_line = last_line or first_line
        for number in range(first_line, last_line + 1):
            if rule_name in self.suppressions.get(number, ()):
                return True
        return False

    def line_comment(self, number):
        """The comment tail of a physical line ('' when none)."""
        if 1 <= number <= len(self.lines):
            line = self.lines[number - 1]
            position = line.find("#")
            if position != -1:
                return line[position:]
        return ""


class LintContext:
    """Everything a project rule can see: parsed files + repo root."""

    def __init__(self, root, files):
        self.root = pathlib.Path(root)
        self.files = files  # list[SourceFile]

    def file(self, relative):
        for source_file in self.files:
            if source_file.relative == relative:
                return source_file
        return None


def collect_sources(root, paths):
    """Parse every ``.py`` file under *paths* into SourceFile objects.

    Files that fail to parse become synthetic ``parse-error`` findings
    rather than aborting the run.
    """
    root = pathlib.Path(root).resolve()
    seen = set()
    files = []
    errors = []
    for path in paths:
        path = pathlib.Path(path).resolve()
        candidates = [path] if path.is_file() else sorted(path.rglob("*.py"))
        for candidate in candidates:
            if candidate in seen or "__pycache__" in candidate.parts:
                continue
            seen.add(candidate)
            try:
                relative = candidate.relative_to(root).as_posix()
            except ValueError:
                relative = candidate.as_posix()
            source = candidate.read_text()
            try:
                files.append(SourceFile(candidate, relative, source))
            except SyntaxError as exc:
                errors.append(Finding(
                    "parse-error", relative, exc.lineno or 1,
                    f"file does not parse: {exc.msg}",
                ))
    return files, errors


class Report:
    """The outcome of one lint run.

    ``dead_baseline`` lists baseline fingerprints that no current
    finding matches — stale entries that would silently mask a future
    regression; they fail the run like new findings do (only populated
    on full-tree runs, see :func:`lint_paths`).
    """

    def __init__(self, findings, rules_run, dead_baseline=()):
        self.findings = findings
        self.rules_run = rules_run
        self.dead_baseline = sorted(dead_baseline)

    @property
    def new_findings(self):
        return [finding for finding in self.findings if not finding.baselined]

    @property
    def exit_code(self):
        return 1 if self.new_findings or self.dead_baseline else 0

    def as_dict(self):
        return {
            "rules": sorted(self.rules_run),
            "findings": [finding.as_dict() for finding in self.findings],
            "new": len(self.new_findings),
            "baselined": len(self.findings) - len(self.new_findings),
            "dead_baseline": self.dead_baseline,
        }

    def render_text(self):
        lines = [finding.render() for finding in self.findings]
        for fingerprint in self.dead_baseline:
            lines.append(
                f"stale baseline entry (matches no finding): {fingerprint} "
                f"— remove it from the baseline file"
            )
        new = len(self.new_findings)
        baselined = len(self.findings) - new
        summary = (
            f"reprolint: {new} new finding(s), {baselined} baselined, "
            f"{len(self.dead_baseline)} stale baseline entr(ies), "
            f"{len(self.rules_run)} rule(s) run"
        )
        if not lines:
            return f"reprolint OK — no findings ({len(self.rules_run)} rule(s) run)"
        return "\n".join(lines + ["", summary])


def load_baseline(path):
    """Read a baseline file: a JSON list of fingerprints (or ``[]``)."""
    path = pathlib.Path(path)
    if not path.exists():
        return set()
    data = json.loads(path.read_text() or "[]")
    return set(data)


def write_baseline(path, findings):
    fingerprints = sorted({finding.fingerprint() for finding in findings})
    pathlib.Path(path).write_text(json.dumps(fingerprints, indent=2) + "\n")
    return fingerprints


def lint_paths(root, paths, select=None, disable=None, baseline=None,
               file_filter=None, check_baseline=False):
    """Run the registered rules over *paths*; returns a :class:`Report`.

    :param select: iterable of rule names to run (default: all).
    :param disable: iterable of rule names to skip.
    :param baseline: set of fingerprints treated as pre-existing.
    :param file_filter: when given (a set of repo-relative paths), file
        rules only check matching files; project rules still see the
        whole tree (their invariants are cross-file by nature).
    :param check_baseline: also report baseline fingerprints matching
        no current finding (only sound on full, unfiltered runs).
    """
    rules = all_rules()
    if select:
        missing = set(select) - set(rules)
        if missing:
            raise KeyError(f"unknown rule(s): {', '.join(sorted(missing))}")
        rules = {name: rules[name] for name in select}
    for name in disable or ():
        rules.pop(name, None)

    files, findings = collect_sources(root, paths)
    context = LintContext(root, files)
    for checker in rules.values():
        if checker.scope == "file":
            for source_file in files:
                if file_filter is not None \
                        and source_file.relative not in file_filter:
                    continue
                for finding in checker.check(source_file):
                    if not source_file.suppressed(
                        checker.name, finding.line, finding.line
                    ):
                        findings.append(finding)
        else:
            for finding in checker.check(context):
                source_file = context.file(finding.path)
                if source_file is None or not source_file.suppressed(
                    checker.name, finding.line, finding.line
                ):
                    findings.append(finding)

    baseline = baseline or set()
    for finding in findings:
        finding.baselined = finding.fingerprint() in baseline
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    dead = ()
    if check_baseline:
        dead = baseline - {finding.fingerprint() for finding in findings}
    return Report(findings, set(rules), dead_baseline=dead)
