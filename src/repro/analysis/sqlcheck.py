"""The SQL/translation invariant checker (rule ``sql-invariants``).

Every query in the golden corpus (:mod:`repro.analysis.corpus`) is run
through the production translation pipeline — ``parse_gremlin`` →
``parameterize_query`` → ``GremlinTranslator.translate`` →
``strip_parameter_markers`` — and the resulting SQL through the in-repo
``repro.relational.sql`` parser.  On the parsed statement we verify the
invariants the paper's templates promise:

* the SQL **parses** under the engine's own grammar;
* every referenced **CTE is defined exactly once, before use** (the
  translator emits ``WITH`` chains in dependency order; a dangling or
  duplicated ``temp_N`` is a broken template);
* the **parameter-slot bookkeeping** is closed: the number of ``?``
  placeholders equals the binding recipe's length, every recipe slot
  indexes into the extracted value vector, and every extracted value is
  actually used (an unused slot means the plan-cache key over-splits);
* base-table scans of VA/EA carry the **lazy-delete filter**
  (``vid >= 0`` / ``eid >= 0``, paper §4.5.2's negative-id deletes) —
  required exactly when the scan is the sole FROM item, i.e. a ``g.V`` /
  ``g.E`` start CTE; joined scans ride on already-filtered inputs;
* adjacency unnests stay within the **column budget**: every
  ``(eid_i, lbl_i, val_i)`` triad enumerated by a ``TABLE(VALUES ...)``
  over OPA/IPA uses an index below the coloring's ``out_columns`` /
  ``in_columns`` and enumerates every triad exactly once.

:func:`verify_translation` checks one Gremlin query and returns problem
strings — tests drive it directly; the registered project rule maps the
whole corpus through it.
"""

from __future__ import annotations

import dataclasses
import re

from repro.analysis.core import Finding, rule
from repro.analysis.corpus import golden_corpus

_TRIAD = re.compile(r"^(eid|lbl|val)(\d+)$")

#: anchor file for corpus findings (the templates live here)
_ANCHOR = "src/repro/core/translator.py"


# ---------------------------------------------------------------------------
# generic walking over the relational AST
# ---------------------------------------------------------------------------

def _walk_nodes(node):
    """Yield every statement/expression node reachable from *node*."""
    from repro.relational.expressions import Expression

    if node is None or isinstance(node, (str, int, float, bool)):
        return
    if isinstance(node, (list, tuple)):
        for item in node:
            yield from _walk_nodes(item)
        return
    if isinstance(node, Expression):
        for expression in node.walk():
            yield expression
            plan = getattr(expression, "plan", None)
            if plan is not None:
                yield from _walk_nodes(plan)
        return
    if dataclasses.is_dataclass(node):
        yield node
        for field in dataclasses.fields(node):
            yield from _walk_nodes(getattr(node, field.name))


def _selects(node):
    from repro.relational.sql.ast_nodes import Select

    return [n for n in _walk_nodes(node) if isinstance(n, Select)]


def _from_entries(select):
    """Flatten a Select's FROM list through Join nesting."""
    from repro.relational.sql.ast_nodes import Join

    entries = []

    def flatten(item):
        if isinstance(item, Join):
            flatten(item.left)
            flatten(item.right)
        else:
            entries.append(item)

    for item in select.from_items:
        flatten(item)
    return entries


def _conjuncts(where):
    from repro.relational.expressions import And

    if where is None:
        return []
    if isinstance(where, And):
        flat = []
        for item in where.items:
            flat.extend(_conjuncts(item))
        return flat
    return [where]


def _has_lazy_filter(select, column):
    """Does the WHERE carry a top-level ``<column> >= 0`` conjunct?"""
    from repro.relational.expressions import Comparison, ColumnRef, Literal

    for conjunct in _conjuncts(select.where):
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op == ">="
            and isinstance(conjunct.left, ColumnRef)
            and conjunct.left.name == column
            and isinstance(conjunct.right, Literal)
            and conjunct.right.value == 0
        ):
            return True
    return False


# ---------------------------------------------------------------------------
# the invariants
# ---------------------------------------------------------------------------

def verify_sql(schema, sql, recipe=None, value_count=None):
    """Problems with one translated statement (empty list = clean)."""
    from repro.relational.errors import EngineError
    from repro.relational.expressions import Parameter
    from repro.relational.sql.ast_nodes import (
        SelectStatement, TableRef, UnnestValues,
    )
    from repro.relational.sql.parser import parse_statement

    problems = []
    try:
        statement = parse_statement(sql)
    except EngineError as exc:
        return [f"does not parse: {exc}"]
    if not isinstance(statement, SelectStatement):
        return [f"translated to {type(statement).__name__}, expected SELECT"]

    base_tables = {name.lower() for name in schema.table_names.values()}
    va = schema.table_names["va"].lower()
    ea = schema.table_names["ea"].lower()
    opa = schema.table_names["opa"].lower()
    ipa = schema.table_names["ipa"].lower()

    # CTE well-formedness: unique names, referenced-before-use resolution
    defined = []
    for cte in statement.ctes:
        name = cte.name.lower()
        if name in defined:
            problems.append(f"CTE '{cte.name}' defined more than once")
        visible = set(defined) | base_tables
        for select in _selects(cte.query):
            for entry in _from_entries(select):
                if isinstance(entry, TableRef) \
                        and entry.name.lower() not in visible:
                    problems.append(
                        f"CTE '{cte.name}' references undefined table "
                        f"'{entry.name}'"
                    )
        defined.append(name)
    visible = set(defined) | base_tables
    for select in _selects(statement.body):
        for entry in _from_entries(select):
            if isinstance(entry, TableRef) \
                    and entry.name.lower() not in visible:
                problems.append(
                    f"query body references undefined table '{entry.name}'"
                )

    # parameter-slot bookkeeping
    if recipe is not None:
        placeholders = sum(
            isinstance(node, Parameter) for node in _walk_nodes(statement)
        )
        if placeholders != len(recipe):
            problems.append(
                f"{placeholders} '?' placeholder(s) but the binding recipe "
                f"has {len(recipe)} slot(s)"
            )
        if value_count is not None:
            out_of_range = [s for s in recipe if not 0 <= s < value_count]
            if out_of_range:
                problems.append(
                    f"recipe slots {out_of_range} outside the "
                    f"{value_count}-value parameter vector"
                )
            unused = set(range(value_count)) - set(recipe)
            if unused:
                problems.append(
                    f"extracted parameter slot(s) {sorted(unused)} never "
                    f"bound — the cache key over-splits"
                )

    # lazy-delete filters + adjacency column budget, per query block
    for select in _selects(statement):
        entries = _from_entries(select)
        tables = [e for e in entries if isinstance(e, TableRef)]
        unnests = [e for e in entries if isinstance(e, UnnestValues)]
        if len(entries) == 1 and len(tables) == 1:
            name = tables[0].name.lower()
            if name == va and not _has_lazy_filter(select, "vid"):
                problems.append(
                    "base scan of VA lacks the 'vid >= 0' lazy-delete filter"
                )
            if name == ea and not _has_lazy_filter(select, "eid"):
                problems.append(
                    "base scan of EA lacks the 'eid >= 0' lazy-delete filter"
                )
        adjacency = {t.name.lower() for t in tables} & {opa, ipa}
        for unnest in unnests:
            if not adjacency:
                continue
            budget = schema.out_columns if opa in adjacency \
                else schema.in_columns
            problems.extend(_check_unnest(unnest, budget, adjacency))
    return problems


def _check_unnest(unnest, budget, adjacency):
    from repro.relational.expressions import ColumnRef

    problems = []
    which = "/".join(sorted(adjacency)).upper()
    if len(unnest.rows) != budget:
        problems.append(
            f"unnest over {which} enumerates {len(unnest.rows)} triad(s), "
            f"column budget is {budget}"
        )
    seen = set()
    for row in unnest.rows:
        if len(row) != 3:
            problems.append(
                f"unnest row over {which} has {len(row)} column(s), "
                f"expected an (eid, lbl, val) triad"
            )
            continue
        indexes = set()
        for position, part in zip(("eid", "lbl", "val"), row):
            if not isinstance(part, ColumnRef):
                problems.append(
                    f"unnest {position} entry over {which} is not a column "
                    f"reference"
                )
                continue
            match = _TRIAD.match(part.name)
            if not match or match.group(1) != position:
                problems.append(
                    f"unnest {position} entry reads '{part.name}', expected "
                    f"'{position}<i>'"
                )
                continue
            indexes.add(int(match.group(2)))
        if len(indexes) == 1:
            index = indexes.pop()
            if index >= budget:
                problems.append(
                    f"triad index {index} over {which} exceeds the column "
                    f"budget {budget}"
                )
            if index in seen:
                problems.append(
                    f"triad index {index} over {which} enumerated twice"
                )
            seen.add(index)
        elif indexes:
            problems.append(
                f"unnest row over {which} mixes triad indexes {sorted(indexes)}"
            )
    return problems


def verify_translation(store, gremlin_text):
    """Translate one Gremlin query the way the plan cache does and verify.

    Returns a list of problem strings (empty = all invariants hold).
    """
    from repro.core.translator import parameterize_query, \
        strip_parameter_markers
    from repro.gremlin import parse_gremlin
    from repro.gremlin.errors import GremlinError

    try:
        template, values, _key = parameterize_query(parse_gremlin(gremlin_text))
        marked = store.translator.translate(template)
        sql, recipe = strip_parameter_markers(marked)
    except GremlinError as exc:
        return [f"does not translate: {exc}"]
    return verify_sql(store.schema, sql, recipe=recipe,
                      value_count=len(values))


def _corpus_store():
    from repro.core import SQLGraphStore
    from repro.datasets.tinker import tinkerpop_classic

    store = SQLGraphStore()
    store.load_graph(tinkerpop_classic())
    return store


@rule(
    "sql-invariants",
    scope="project",
    description="every golden Table-8 translation must parse, resolve its "
    "CTEs, balance its parameter slots, keep lazy-delete filters, and stay "
    "within the adjacency column budget",
)
def check_sql_invariants(context):
    store = _corpus_store()
    findings = []
    for name, text in sorted(golden_corpus().items()):
        for problem in verify_translation(store, text):
            findings.append(Finding(
                "sql-invariants", _ANCHOR, 1,
                f"golden query '{name}' ({text}): {problem}",
                symbol=f"{name}:{problem}",
            ))
    return findings
