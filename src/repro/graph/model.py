"""In-memory property graph: the shared object model.

Vertices and edges carry integer ids, string labels (edges only) and
string-keyed attribute dictionaries, exactly matching the paper's data model
(Figure 2a).  Adjacency is indexed per vertex and per label in both
directions, so this model doubles as a capable native graph store.
"""

from __future__ import annotations

from repro.graph.blueprints import Direction, GraphInterface


class Element:
    """Common behaviour of vertices and edges: id + properties."""

    __slots__ = ("id", "properties")

    def __init__(self, element_id, properties=None):
        self.id = element_id
        self.properties = dict(properties) if properties else {}

    def get_property(self, key, default=None):
        return self.properties.get(key, default)

    def set_property(self, key, value):
        self.properties[key] = value

    def remove_property(self, key):
        return self.properties.pop(key, None)

    def property_keys(self):
        return list(self.properties)


class Vertex(Element):
    """A vertex with per-label adjacency lists in both directions."""

    __slots__ = ("out_edges", "in_edges")

    def __init__(self, vertex_id, properties=None):
        super().__init__(vertex_id, properties)
        self.out_edges: dict[str, list[Edge]] = {}
        self.in_edges: dict[str, list[Edge]] = {}

    def edges(self, direction, labels=()):
        """Edges incident to this vertex in *direction* (filtered by labels)."""
        if direction is Direction.BOTH:
            yield from self.edges(Direction.OUT, labels)
            yield from self.edges(Direction.IN, labels)
            return
        table = self.out_edges if direction is Direction.OUT else self.in_edges
        if labels:
            for label in labels:
                yield from table.get(label, ())
        else:
            for bucket in table.values():
                yield from bucket

    def vertices(self, direction, labels=()):
        """Adjacent vertices reached over edges in *direction*."""
        if direction is Direction.BOTH:
            yield from self.vertices(Direction.OUT, labels)
            yield from self.vertices(Direction.IN, labels)
            return
        for edge in self.edges(direction, labels):
            yield edge.in_vertex if direction is Direction.OUT else edge.out_vertex

    def degree(self, direction=Direction.BOTH, labels=()):
        return sum(1 for __ in self.edges(direction, labels))

    def __repr__(self):
        return f"Vertex({self.id})"


class Edge(Element):
    """A directed, labeled edge from ``out_vertex`` to ``in_vertex``."""

    __slots__ = ("label", "out_vertex", "in_vertex")

    def __init__(self, edge_id, out_vertex, in_vertex, label, properties=None):
        super().__init__(edge_id, properties)
        self.label = label
        self.out_vertex = out_vertex
        self.in_vertex = in_vertex

    def vertex(self, direction):
        """Blueprints getVertex: OUT = source/tail, IN = target/head."""
        if direction is Direction.OUT:
            return self.out_vertex
        if direction is Direction.IN:
            return self.in_vertex
        raise ValueError("edge endpoint requires OUT or IN")

    def __repr__(self):
        return (
            f"Edge({self.id}, {self.out_vertex.id}-[{self.label}]->"
            f"{self.in_vertex.id})"
        )


class PropertyGraph(GraphInterface):
    """A mutable in-memory property graph."""

    def __init__(self):
        self._vertices: dict[int, Vertex] = {}
        self._edges: dict[int, Edge] = {}
        self._next_vertex_id = 1
        self._next_edge_id = 1

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get_vertex(self, vertex_id):
        return self._vertices.get(vertex_id)

    def get_edge(self, edge_id):
        return self._edges.get(edge_id)

    def vertices(self):
        return iter(self._vertices.values())

    def edges(self):
        return iter(self._edges.values())

    def vertex_count(self):
        return len(self._vertices)

    def edge_count(self):
        return len(self._edges)

    def vertex_ids(self):
        return list(self._vertices)

    def edge_labels(self):
        """Distinct edge labels present in the graph."""
        labels = set()
        for edge in self._edges.values():
            labels.add(edge.label)
        return labels

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def add_vertex(self, vertex_id=None, properties=None):
        if vertex_id is None:
            vertex_id = self._next_vertex_id
        if vertex_id in self._vertices:
            raise ValueError(f"vertex {vertex_id} already exists")
        self._next_vertex_id = max(self._next_vertex_id, vertex_id + 1)
        vertex = Vertex(vertex_id, properties)
        self._vertices[vertex_id] = vertex
        return vertex

    def add_edge(self, out_vertex_id, in_vertex_id, label, edge_id=None,
                 properties=None):
        out_vertex = self._vertices.get(out_vertex_id)
        in_vertex = self._vertices.get(in_vertex_id)
        if out_vertex is None or in_vertex is None:
            raise ValueError(
                f"edge endpoints must exist: {out_vertex_id}->{in_vertex_id}"
            )
        if edge_id is None:
            edge_id = self._next_edge_id
        if edge_id in self._edges:
            raise ValueError(f"edge {edge_id} already exists")
        self._next_edge_id = max(self._next_edge_id, edge_id + 1)
        edge = Edge(edge_id, out_vertex, in_vertex, label, properties)
        self._edges[edge_id] = edge
        out_vertex.out_edges.setdefault(label, []).append(edge)
        in_vertex.in_edges.setdefault(label, []).append(edge)
        return edge

    def remove_edge(self, edge_id):
        edge = self._edges.pop(edge_id, None)
        if edge is None:
            return False
        bucket = edge.out_vertex.out_edges.get(edge.label, [])
        if edge in bucket:
            bucket.remove(edge)
        bucket = edge.in_vertex.in_edges.get(edge.label, [])
        if edge in bucket:
            bucket.remove(edge)
        return True

    def remove_vertex(self, vertex_id):
        vertex = self._vertices.get(vertex_id)
        if vertex is None:
            return False
        incident = [edge.id for edge in vertex.edges(Direction.BOTH)]
        for edge_id in incident:
            self.remove_edge(edge_id)
        del self._vertices[vertex_id]
        return True

    def set_vertex_property(self, vertex_id, key, value):
        vertex = self._vertices[vertex_id]
        vertex.set_property(key, value)

    def set_edge_property(self, edge_id, key, value):
        edge = self._edges[edge_id]
        edge.set_property(key, value)

    # ------------------------------------------------------------------
    # utilities
    # ------------------------------------------------------------------
    def copy(self):
        """Deep-enough copy: new elements, shared (copied) property dicts."""
        clone = PropertyGraph()
        for vertex in self._vertices.values():
            clone.add_vertex(vertex.id, dict(vertex.properties))
        for edge in self._edges.values():
            clone.add_edge(
                edge.out_vertex.id, edge.in_vertex.id, edge.label, edge.id,
                dict(edge.properties),
            )
        return clone

    def __repr__(self):
        return (
            f"PropertyGraph(vertices={len(self._vertices)}, "
            f"edges={len(self._edges)})"
        )
