"""Property-graph object model and the Blueprints-style API.

The :class:`~repro.graph.model.PropertyGraph` is the shared in-memory
representation used by dataset generators, the Gremlin reference interpreter,
the baseline stores and the SQLGraph bulk loader.
"""

from repro.graph.blueprints import Direction, GraphInterface
from repro.graph.model import Edge, PropertyGraph, Vertex

__all__ = ["Direction", "Edge", "GraphInterface", "PropertyGraph", "Vertex"]
