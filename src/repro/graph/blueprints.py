"""The Blueprints-style CRUD interface all graph stores implement.

This mirrors the TinkerPop 2 Blueprints API the paper refers to: a small set
of primitive graph operations (``getVertex``, ``getEdges`` ...) that a
pipe-at-a-time Gremlin engine invokes once per traversal step per element.
The SQLGraph store implements the same interface for CRUD, but answers whole
Gremlin queries through SQL translation instead of stepping through it.
"""

from __future__ import annotations

import enum


class Direction(enum.Enum):
    """Edge direction relative to a vertex.

    ``OUT`` edges leave the vertex (it is the tail / source); ``IN`` edges
    arrive at it (head / target); ``BOTH`` is their union.
    """

    OUT = "out"
    IN = "in"
    BOTH = "both"

    def opposite(self):
        if self is Direction.OUT:
            return Direction.IN
        if self is Direction.IN:
            return Direction.OUT
        return Direction.BOTH


class GraphInterface:
    """Abstract base for graph stores.

    Concrete stores: :class:`repro.graph.model.PropertyGraph` (plain
    in-memory), :class:`repro.baselines.native.NativeGraphStore`,
    :class:`repro.baselines.kv.KVGraphStore`, and
    :class:`repro.core.store.SQLGraphStore`.
    """

    # --- reads ---------------------------------------------------------
    def get_vertex(self, vertex_id):
        raise NotImplementedError

    def get_edge(self, edge_id):
        raise NotImplementedError

    def vertices(self):
        """Iterate over all vertices."""
        raise NotImplementedError

    def edges(self):
        """Iterate over all edges."""
        raise NotImplementedError

    def vertex_count(self):
        raise NotImplementedError

    def edge_count(self):
        raise NotImplementedError

    # --- writes --------------------------------------------------------
    def add_vertex(self, vertex_id=None, properties=None):
        raise NotImplementedError

    def add_edge(self, out_vertex_id, in_vertex_id, label, edge_id=None,
                 properties=None):
        raise NotImplementedError

    def remove_vertex(self, vertex_id):
        raise NotImplementedError

    def remove_edge(self, edge_id):
        raise NotImplementedError

    def set_vertex_property(self, vertex_id, key, value):
        raise NotImplementedError

    def set_edge_property(self, edge_id, key, value):
        raise NotImplementedError
