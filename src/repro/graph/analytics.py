"""Bulk graph analytics as iterated relational queries (docs/ANALYTICS.md).

Four algorithms — PageRank, weakly-connected components, label
propagation and single-source shortest paths — each implemented as a
*driver*: a Python loop that issues one small set of SQL joins/aggregates
per iteration against scratch tables derived from the SQLGraph adjacency
schema, checks convergence with an aggregate delta, and stops at a
bounded iteration count.  This is the "graph analytics on a relational
engine" recipe of the Vertica graph paper: the engine's join/aggregate
machinery (hash joins, batch kernels, the cost-based planner) does the
per-iteration heavy lifting; the driver only sequences statements.

Scratch tables
--------------

Every run materializes the *live* graph once into per-run scratch tables
(``scratch_<token>_v``, ``scratch_<token>_e``, ...) named under
:data:`~repro.relational.schema.SCRATCH_TABLE_PREFIX`:

* vertices: ``va`` rows with ``vid >= 0`` (lazy deletes excluded);
* edges: ``ea`` rows with ``eid >= 0`` whose *both* endpoints are live —
  the same dangling-edge rule as ``SQLGraphStore.export_graph``.

Iterations then mutate only scratch tables (``DELETE FROM`` +
``INSERT INTO ... SELECT`` swaps, never per-iteration DDL), so the
statement shapes stay plan-cache friendly.

Durability contract: scratch state is *never* logged.  On a durable
store the whole run executes under ``wal.pause()`` and checkpoint
snapshots skip scratch-prefixed tables, so a crash at any point during
(or after) an analytics run recovers the base tables bit-identical with
no orphaned frontier/temp tables (``tests/test_analytics_crash.py``).

Cooperative cancellation: drivers accept a ``time_budget_s`` deadline
and a ``cancel`` callback, both checked between statements — the server
op maps them to the ``STATEMENT_TIMEOUT`` and ``SHUTTING_DOWN`` wire
errors so a draining server never waits on a long analytics loop.
"""

from __future__ import annotations

import heapq
import threading
from time import monotonic, perf_counter

from repro.obs import context as obs_context
from repro.obs.stats import AnalyticsStats
from repro.relational.errors import EngineError
from repro.relational.schema import SCRATCH_TABLE_PREFIX


class AnalyticsError(EngineError):
    """Invalid analytics request (unknown source, bad option, ...)."""


class AnalyticsTimeoutError(AnalyticsError):
    """An analytics run exceeded its time budget between statements."""


class AnalyticsCancelledError(AnalyticsError):
    """An analytics run was cancelled (e.g. server drain) mid-iteration."""


#: process-wide scratch-table token pool; tokens keep concurrent runs
#: (different server sessions) from colliding on scratch names.  Released
#: tokens are reused smallest-first so back-to-back runs get the *same*
#: scratch table names — and therefore byte-identical statement texts,
#: which is what lets the prepared-statement/plan cache serve every
#: fixed-shape statement of run k+1 from run k's entries.
_TOKENS_GUARD = threading.Lock()
_FREE_TOKENS = []  # min-heap of released tokens
_NEXT_TOKEN = 1


def _acquire_token():
    global _NEXT_TOKEN
    with _TOKENS_GUARD:
        if _FREE_TOKENS:
            return heapq.heappop(_FREE_TOKENS)
        token = _NEXT_TOKEN
        _NEXT_TOKEN += 1
        return token


def _release_token(token):
    with _TOKENS_GUARD:
        heapq.heappush(_FREE_TOKENS, token)


def _quote(text):
    """A single-quoted SQL string literal."""
    return "'" + str(text).replace("'", "''") + "'"


class _Run:
    """One analytics run: scratch-table lifecycle + stats + cancellation.

    Use as a context manager; ``__exit__`` always drops the scratch
    tables (and re-enables WAL logging for this thread).
    """

    def __init__(self, database, algorithm, options, time_budget_s=None,
                 cancel=None):
        self.database = database
        self.stats = AnalyticsStats(algorithm, options)
        self.stats.session_id = obs_context.current_session_id()
        self.stats.connection = obs_context.current_connection()
        self.token = _acquire_token()
        self.deadline = (
            None if time_budget_s is None else monotonic() + time_budget_s
        )
        self.cancel = cancel
        self._tables = []
        self._pause = None
        self._started = perf_counter()

    def __enter__(self):
        wal = self.database.wal
        if wal is not None:
            # nothing a run does may reach the log: scratch DDL/DML would
            # otherwise be replayed into a recovered catalog
            self._pause = wal.pause()
            self._pause.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        try:
            for name in reversed(self._tables):
                self.database.execute(f"DROP TABLE IF EXISTS {name}")
        finally:
            if self._pause is not None:
                self._pause.__exit__(None, None, None)
            # only after the scratch tables are gone: the next run to
            # take this token recreates them from scratch
            _release_token(self.token)
            self.stats.elapsed_s = perf_counter() - self._started
        return False

    def name(self, suffix):
        return f"{SCRATCH_TABLE_PREFIX}{self.token}_{suffix}"

    def scratch(self, suffix, columns_sql):
        """CREATE a scratch table; remembered for cleanup."""
        name = self.name(suffix)
        self.sql(f"CREATE TABLE {name} ({columns_sql})")
        self._tables.append(name)
        return name

    def index(self, table, column):
        self.sql(f"CREATE INDEX {table}_{column} ON {table} ({column}) "
                 "USING hash")

    def sql(self, statement, params=None):
        """Run one statement, honouring deadline + cancel between calls.

        Values that change between iterations (the dangling mass, the
        sssp source, ...) are bound as ``?`` *params* rather than spliced
        into the text, so every fixed-shape statement keeps one entry in
        the prepared-statement/plan cache across iterations and runs.
        """
        self.check()
        result = self.database.execute(statement, params)
        self.stats.statements_executed += 1
        return result

    def check(self):
        if self.cancel is not None and self.cancel():
            raise AnalyticsCancelledError(
                f"{self.stats.algorithm} run cancelled after "
                f"{self.stats.statements_executed} statements"
            )
        if self.deadline is not None and monotonic() > self.deadline:
            raise AnalyticsTimeoutError(
                f"{self.stats.algorithm} run exceeded its time budget "
                f"({self.stats.options.get('time_budget_s')}s) after "
                f"{len(self.stats.iterations)} iterations"
            )

    def iteration(self, rows, delta, started):
        self.stats.record_iteration(
            rows=rows, delta=delta, elapsed_s=perf_counter() - started
        )

    def finish(self, values, converged):
        self.stats.converged = converged
        self.stats.result_rows = len(values)
        return values


class GraphAnalytics:
    """Analytics drivers over one store's adjacency tables.

    :param database: the store's :class:`~repro.relational.database.
        Database`.
    :param table_names: the store schema's ``table_names`` mapping (only
        ``va``/``ea`` are read — VA+EA carry the full graph state).

    Each public method returns a plain ``{vid: value}`` dict and leaves
    an :class:`~repro.obs.stats.AnalyticsStats` on :attr:`last_stats`.
    """

    def __init__(self, database, table_names):
        self.database = database
        self.va = table_names["va"]
        self.ea = table_names["ea"]
        self.last_stats = None

    # ------------------------------------------------------------------
    # shared scratch extraction
    # ------------------------------------------------------------------
    def _extract(self, run, weight_key=None):
        """Materialize live vertices + edges into scratch ``v``/``e``.

        Returns ``(v_name, e_name, vertex_count)``.  ``e`` carries a
        ``w`` weight column: ``COALESCE(json_val(attr, key), 1)`` when a
        *weight_key* is given, constant 1 otherwise.
        """
        v = run.scratch("v", "vid INTEGER PRIMARY KEY")
        e = run.scratch("e", "src INTEGER, dst INTEGER, w DOUBLE")
        run.sql(f"INSERT INTO {v} SELECT vid FROM {self.va} "
                "WHERE vid >= 0")
        n = run.sql(f"SELECT COUNT(*) FROM {v}").scalar() or 0
        weight = "1.0" if weight_key is None else (
            f"COALESCE(JSON_VAL(ea.attr, {_quote(weight_key)}), 1.0)"
        )
        run.sql(
            f"INSERT INTO {e} "
            f"SELECT ea.outv, ea.inv, {weight} FROM {self.ea} ea "
            f"JOIN {self.va} src ON src.vid = ea.outv "
            f"JOIN {self.va} dst ON dst.vid = ea.inv "
            "WHERE ea.eid >= 0 AND src.vid >= 0 AND dst.vid >= 0"
        )
        run.index(e, "src")
        run.index(e, "dst")
        return v, e, n

    def _result_dict(self, run, table):
        return dict(run.sql(f"SELECT * FROM {table}").rows)

    # ------------------------------------------------------------------
    # PageRank
    # ------------------------------------------------------------------
    def pagerank(self, damping=0.85, tolerance=1e-6, max_iterations=50,
                 time_budget_s=None, cancel=None):
        """Power iteration with uniform teleport and dangling-mass
        redistribution::

            rank'(v) = (1-d)/N + d * (SUM contrib(u->v) + dangling/N)

        Per iteration: one grouped 3-way join computes the incoming
        contributions (``rank/out_degree`` summed per destination), a
        LEFT JOIN anti-probe sums the dangling mass, and the L1 delta
        ``SUM(ABS(next - rank))`` decides convergence (``<= tolerance``).
        """
        options = {
            "damping": damping, "tolerance": tolerance,
            "max_iterations": max_iterations, "time_budget_s": time_budget_s,
        }
        with _Run(self.database, "pagerank", options,
                  time_budget_s, cancel) as run:
            self.last_stats = run.stats
            v, e, n = self._extract(run)
            if not n:
                return run.finish({}, converged=True)
            rank = run.scratch("rank", "vid INTEGER PRIMARY KEY, val DOUBLE")
            nxt = run.scratch("next", "vid INTEGER PRIMARY KEY, val DOUBLE")
            deg = run.scratch("deg", "src INTEGER PRIMARY KEY, cnt INTEGER")
            contrib = run.scratch(
                "contrib", "vid INTEGER PRIMARY KEY, val DOUBLE"
            )
            run.sql(f"INSERT INTO {deg} SELECT src, COUNT(*) FROM {e} "
                    "GROUP BY src")
            run.sql(f"INSERT INTO {rank} SELECT vid, ? FROM {v}",
                    params=(1.0 / n,))
            base = (1.0 - damping) / n
            converged = False
            for __ in range(max_iterations):
                started = perf_counter()
                run.sql(f"DELETE FROM {contrib}")
                run.sql(
                    f"INSERT INTO {contrib} "
                    f"SELECT e.dst, SUM(r.val / d.cnt) FROM {rank} r "
                    f"JOIN {deg} d ON d.src = r.vid "
                    f"JOIN {e} e ON e.src = r.vid GROUP BY e.dst"
                )
                dangling = run.sql(
                    f"SELECT SUM(r.val) FROM {rank} r "
                    f"LEFT JOIN {deg} d ON d.src = r.vid "
                    "WHERE d.src IS NULL"
                ).scalar() or 0.0
                run.sql(f"DELETE FROM {nxt}")
                # the per-iteration dangling mass is a bound param: the
                # statement text is identical every iteration
                run.sql(
                    f"INSERT INTO {nxt} "
                    f"SELECT v.vid, ? + ? * (COALESCE(c.val, 0.0) + ?) "
                    f"FROM {v} v LEFT JOIN {contrib} c ON c.vid = v.vid",
                    params=(base, damping, dangling / n),
                )
                delta = run.sql(
                    f"SELECT SUM(ABS(n.val - r.val)) FROM {nxt} n "
                    f"JOIN {rank} r ON r.vid = n.vid"
                ).scalar() or 0.0
                run.sql(f"DELETE FROM {rank}")
                run.sql(f"INSERT INTO {rank} SELECT * FROM {nxt}")
                run.iteration(rows=n, delta=delta, started=started)
                if delta <= tolerance:
                    converged = True
                    break
            return run.finish(self._result_dict(run, rank), converged)

    # ------------------------------------------------------------------
    # weakly-connected components
    # ------------------------------------------------------------------
    def connected_components(self, max_iterations=None, time_budget_s=None,
                             cancel=None):
        """Min-label propagation over undirected reachability.

        Every vertex starts labelled with its own vid; each iteration a
        vertex takes the MIN over its own label and all neighbour labels
        (both edge directions), staged with three INSERT..SELECTs and one
        ``GROUP BY``.  Converged when no label changed — at most
        *diameter* iterations, bounded by the vertex count by default.
        The final label of every vertex is the smallest vid reachable
        from it, so component ids are stable across runs.
        """
        options = {
            "max_iterations": max_iterations, "time_budget_s": time_budget_s,
        }
        with _Run(self.database, "components", options,
                  time_budget_s, cancel) as run:
            self.last_stats = run.stats
            v, e, n = self._extract(run)
            if not n:
                return run.finish({}, converged=True)
            if max_iterations is None:
                max_iterations = n + 1
            comp = run.scratch("comp", "vid INTEGER PRIMARY KEY, val INTEGER")
            nxt = run.scratch("next", "vid INTEGER PRIMARY KEY, val INTEGER")
            stage = run.scratch("stage", "vid INTEGER, val INTEGER")
            run.sql(f"INSERT INTO {comp} SELECT vid, vid FROM {v}")
            converged = False
            for __ in range(max_iterations):
                started = perf_counter()
                run.sql(f"DELETE FROM {stage}")
                run.sql(f"INSERT INTO {stage} SELECT vid, val FROM {comp}")
                run.sql(f"INSERT INTO {stage} SELECT e.dst, c.val "
                        f"FROM {comp} c JOIN {e} e ON e.src = c.vid")
                run.sql(f"INSERT INTO {stage} SELECT e.src, c.val "
                        f"FROM {comp} c JOIN {e} e ON e.dst = c.vid")
                run.sql(f"DELETE FROM {nxt}")
                run.sql(f"INSERT INTO {nxt} SELECT vid, MIN(val) "
                        f"FROM {stage} GROUP BY vid")
                changed = run.sql(
                    f"SELECT COUNT(*) FROM {nxt} n "
                    f"JOIN {comp} c ON c.vid = n.vid WHERE n.val <> c.val"
                ).scalar() or 0
                run.sql(f"DELETE FROM {comp}")
                run.sql(f"INSERT INTO {comp} SELECT * FROM {nxt}")
                run.iteration(rows=n, delta=changed, started=started)
                if not changed:
                    converged = True
                    break
            return run.finish(self._result_dict(run, comp), converged)

    # ------------------------------------------------------------------
    # label propagation
    # ------------------------------------------------------------------
    def label_propagation(self, max_iterations=20, time_budget_s=None,
                          cancel=None):
        """Synchronous, deterministic label propagation (communities).

        Vertices start with their vid as label.  Each iteration every
        vertex casts one vote for its own current label (which also
        keeps isolated vertices labelled) plus one vote per incident
        edge endpoint, both directions; the new label is the most
        frequent vote with ties broken by the smallest label (``MIN``
        over the max-count votes) — fully deterministic, so the SQL and
        oracle results match exactly.  Synchronous updates can
        oscillate on bipartite structures, hence the bounded iteration
        count; the run reports ``converged=False`` when the bound hits.
        """
        options = {
            "max_iterations": max_iterations, "time_budget_s": time_budget_s,
        }
        with _Run(self.database, "labelprop", options,
                  time_budget_s, cancel) as run:
            self.last_stats = run.stats
            v, e, n = self._extract(run)
            if not n:
                return run.finish({}, converged=True)
            lab = run.scratch("lab", "vid INTEGER PRIMARY KEY, val INTEGER")
            nxt = run.scratch("next", "vid INTEGER PRIMARY KEY, val INTEGER")
            stage = run.scratch("stage", "vid INTEGER, val INTEGER")
            counts = run.scratch(
                "counts", "vid INTEGER, val INTEGER, cnt INTEGER"
            )
            best = run.scratch("best", "vid INTEGER PRIMARY KEY, cnt INTEGER")
            run.sql(f"INSERT INTO {lab} SELECT vid, vid FROM {v}")
            converged = False
            for __ in range(max_iterations):
                started = perf_counter()
                run.sql(f"DELETE FROM {stage}")
                run.sql(f"INSERT INTO {stage} SELECT vid, val FROM {lab}")
                run.sql(f"INSERT INTO {stage} SELECT e.dst, l.val "
                        f"FROM {lab} l JOIN {e} e ON e.src = l.vid")
                run.sql(f"INSERT INTO {stage} SELECT e.src, l.val "
                        f"FROM {lab} l JOIN {e} e ON e.dst = l.vid")
                run.sql(f"DELETE FROM {counts}")
                run.sql(f"INSERT INTO {counts} SELECT vid, val, COUNT(*) "
                        f"FROM {stage} GROUP BY vid, val")
                run.sql(f"DELETE FROM {best}")
                run.sql(f"INSERT INTO {best} SELECT vid, MAX(cnt) "
                        f"FROM {counts} GROUP BY vid")
                run.sql(f"DELETE FROM {nxt}")
                run.sql(
                    f"INSERT INTO {nxt} SELECT c.vid, MIN(c.val) "
                    f"FROM {counts} c, {best} b "
                    "WHERE b.vid = c.vid AND c.cnt = b.cnt GROUP BY c.vid"
                )
                changed = run.sql(
                    f"SELECT COUNT(*) FROM {nxt} n "
                    f"JOIN {lab} l ON l.vid = n.vid WHERE n.val <> l.val"
                ).scalar() or 0
                run.sql(f"DELETE FROM {lab}")
                run.sql(f"INSERT INTO {lab} SELECT * FROM {nxt}")
                run.iteration(rows=n, delta=changed, started=started)
                if not changed:
                    converged = True
                    break
            return run.finish(self._result_dict(run, lab), converged)

    # ------------------------------------------------------------------
    # single-source shortest paths
    # ------------------------------------------------------------------
    def shortest_paths(self, source, weight_key=None, max_iterations=None,
                       time_budget_s=None, cancel=None):
        """Frontier Bellman-Ford along edge direction.

        Each iteration relaxes every edge leaving the current frontier
        (``MIN(front.val + e.w) GROUP BY e.dst``), keeps only the
        candidates that improve (or first reach) a vertex, folds them
        into the distance table, and makes them the next frontier.  An
        empty frontier means convergence — at most ``N-1`` productive
        rounds for the non-negative weights this driver requires.

        Returns distances for *reachable* vertices only.  ``weight_key``
        reads ``json_val(ea.attr, key)`` per edge (missing values default
        to 1); a negative weight raises :class:`AnalyticsError`.
        """
        options = {
            "source": source, "weight_key": weight_key,
            "max_iterations": max_iterations, "time_budget_s": time_budget_s,
        }
        with _Run(self.database, "sssp", options,
                  time_budget_s, cancel) as run:
            self.last_stats = run.stats
            v, e, n = self._extract(run, weight_key=weight_key)
            present = run.sql(
                f"SELECT COUNT(*) FROM {v} WHERE vid = ?",
                params=(int(source),),
            ).scalar()
            if not present:
                raise AnalyticsError(
                    f"unknown source vertex {source!r} for sssp"
                )
            if weight_key is not None:
                negative = run.sql(
                    f"SELECT COUNT(*) FROM {e} WHERE w < 0"
                ).scalar()
                if negative:
                    raise AnalyticsError(
                        f"sssp requires non-negative weights; "
                        f"{negative} edges have a negative "
                        f"{weight_key!r}"
                    )
            if max_iterations is None:
                max_iterations = n + 1
            dist = run.scratch("dist", "vid INTEGER PRIMARY KEY, val DOUBLE")
            front = run.scratch("front", "vid INTEGER PRIMARY KEY, val DOUBLE")
            nxt = run.scratch("next", "vid INTEGER PRIMARY KEY, val DOUBLE")
            cand = run.scratch("cand", "vid INTEGER PRIMARY KEY, val DOUBLE")
            stage = run.scratch("stage", "vid INTEGER, val DOUBLE")
            run.sql(f"INSERT INTO {dist} VALUES (?, 0.0)",
                    params=(int(source),))
            run.sql(f"INSERT INTO {front} VALUES (?, 0.0)",
                    params=(int(source),))
            converged = False
            for __ in range(max_iterations):
                started = perf_counter()
                run.sql(f"DELETE FROM {cand}")
                run.sql(
                    f"INSERT INTO {cand} "
                    f"SELECT e.dst, MIN(f.val + e.w) FROM {front} f "
                    f"JOIN {e} e ON e.src = f.vid GROUP BY e.dst"
                )
                run.sql(f"DELETE FROM {nxt}")
                improved = run.sql(
                    f"INSERT INTO {nxt} SELECT c.vid, c.val FROM {cand} c "
                    f"LEFT JOIN {dist} t ON t.vid = c.vid "
                    "WHERE t.vid IS NULL OR c.val < t.val"
                ).rowcount
                run.iteration(rows=improved, delta=improved, started=started)
                if not improved:
                    converged = True
                    break
                run.sql(f"DELETE FROM {stage}")
                run.sql(f"INSERT INTO {stage} SELECT vid, val FROM {dist}")
                run.sql(f"INSERT INTO {stage} SELECT vid, val FROM {nxt}")
                run.sql(f"DELETE FROM {dist}")
                run.sql(f"INSERT INTO {dist} SELECT vid, MIN(val) "
                        f"FROM {stage} GROUP BY vid")
                run.sql(f"DELETE FROM {front}")
                run.sql(f"INSERT INTO {front} SELECT * FROM {nxt}")
            return run.finish(self._result_dict(run, dist), converged)
