"""Simulated client/server communication cost.

The paper's query-processing argument (§4.2): implementing Blueprints over a
server means one request/response per primitive graph operation, a "chatty
protocol" with "multiple trips between the client code and the graph
database server".  SQLGraph pays one round trip per *query*; pipe-at-a-time
stores pay one per *step per element*.

:class:`ClientServerLink` charges that cost either as real wall-clock sleep
(for throughput/concurrency experiments — sleeping releases the GIL, so
multi-requester behaviour is realistic) or as pure accounting (for fast
unit tests and call-count assertions).
"""

from __future__ import annotations

import threading
import time


class ClientServerLink:
    """Tracks (and optionally pays) per-request communication cost.

    :param rtt_seconds: cost of one round trip.
    :param sleep: when True, actually sleep ``rtt_seconds`` per call;
        when False, only account for it in ``simulated_seconds``.
    """

    #: sleeps shorter than this are batched (OS sleep granularity would
    #: otherwise overcharge sub-100µs costs)
    MIN_SLEEP = 0.0005

    def __init__(self, rtt_seconds=0.0, sleep=False):
        self.rtt_seconds = rtt_seconds
        self.sleep = sleep
        self._lock = threading.Lock()
        self._debt = threading.local()
        self.calls = 0
        self.simulated_seconds = 0.0

    def round_trip(self, count=1):
        with self._lock:
            self.calls += count
            self.simulated_seconds += self.rtt_seconds * count
        if self.sleep and self.rtt_seconds > 0:
            debt = getattr(self._debt, "value", 0.0) + self.rtt_seconds * count
            if debt >= self.MIN_SLEEP:
                time.sleep(debt)
                debt = 0.0
            self._debt.value = debt

    def reset(self):
        with self._lock:
            self.calls = 0
            self.simulated_seconds = 0.0

    def snapshot(self):
        with self._lock:
            return {"calls": self.calls, "seconds": self.simulated_seconds}


LOCALHOST_RTT = 0.0002
"""Default localhost HTTP round trip (~200µs), matching the paper's setup of
clients talking to a server on localhost."""


class ServerGate:
    """A request-processing gate: limited workers + per-request service time.

    Models the JVM/Rexster side of the baselines in the LinkBench workload:
    each CRUD request is an HTTP call whose Gremlin payload is evaluated by
    a small server worker pool, paying script-evaluation/session overhead.
    The gate is held while the request is processed, so offered load beyond
    ``workers`` queues — reproducing the flat throughput curves of paper
    Figure 9 and the sub-second per-op latencies of Tables 6/7.
    """

    def __init__(self, workers=2, service_seconds=0.0):
        self.workers = workers
        self.service_seconds = service_seconds
        self._semaphore = threading.Semaphore(workers)

    def __enter__(self):
        self._semaphore.acquire()
        if self.service_seconds > 0:
            time.sleep(self.service_seconds)
        return self

    def __exit__(self, exc_type, exc, tb):
        self._semaphore.release()
        return False


class GatedAdapter:
    """Wrap a LinkBench adapter so every operation passes a ServerGate."""

    def __init__(self, adapter, gate):
        self.adapter = adapter
        self.gate = gate

    def execute(self, operation):
        with self.gate:
            self.adapter.execute(operation)
