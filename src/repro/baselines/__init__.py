"""Baseline graph stores and alternative schemas.

The paper compares SQLGraph against Titan(BerkeleyDB), Neo4j and OrientDB —
closed JVM servers we cannot run here.  We reproduce their *architecture*
instead, because the architecture is what the paper credits for the
performance gap:

* :mod:`repro.baselines.native` — a Neo4j-like native in-memory adjacency
  store evaluating Gremlin pipe-at-a-time through Blueprints calls;
* :mod:`repro.baselines.kv` — a Titan/BerkeleyDB-like store over a sorted
  key-value map with per-read deserialization;
* :mod:`repro.baselines.latency` — the simulated client/server round-trip
  model both baselines (and SQLGraph, once per request) charge;
* :mod:`repro.baselines.schemas` — the alternative schemas of the §3
  micro-benchmarks (JSON adjacency, hash-shredded attributes).
"""

from repro.baselines.kv import KVGraphStore
from repro.baselines.latency import ClientServerLink
from repro.baselines.native import NativeGraphStore

__all__ = ["ClientServerLink", "KVGraphStore", "NativeGraphStore"]
