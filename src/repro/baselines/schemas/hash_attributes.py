"""Hash-shredded vertex attribute storage (paper Figure 2d).

Attribute keys are coloring-hashed to ``(attr_i, type_i, val_i)`` column
triads of a single relational table.  Because the table needs one uniform
VAL column type, every value is stored as a *string* and numeric predicates
pay a CAST — one of the two disadvantages the paper identifies.  The other
two are modeled faithfully as well:

* **long strings** move to an overflow table (``val`` holds ``lsid:<n>``),
* **multi-valued keys** move to a multi-value table (``val`` holds
  ``mv:<n>``),

so value lookups may need extra joins, unlike the JSON attribute table.
This is the losing arm of Figure 4 and the source of Table 3's
"Long String Table Rows" / "Multi-Value Table Rows" statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.coloring import ColoringHash, attribute_key_sets
from repro.relational.database import Database

LONG_STRING_THRESHOLD = 64


@dataclass
class HashAttributeStats:
    """Paper Table 3, "Vertex Attribute Hash Table" column."""

    hashed_keys: int = 0
    columns: int = 0
    vertices: int = 0
    spill_rows: int = 0
    long_string_rows: int = 0
    multi_value_rows: int = 0

    @property
    def bucket_size(self):
        return self.hashed_keys / self.columns if self.columns else 0.0

    @property
    def spill_percentage(self):
        if not self.vertices:
            return 0.0
        return 100.0 * self.spill_rows / self.vertices


def _type_name(value):
    if isinstance(value, bool):
        return "BOOLEAN"
    if isinstance(value, int):
        return "INTEGER"
    if isinstance(value, float):
        return "DOUBLE"
    return "STRING"


class HashAttributeTable:
    """Vertex attributes shredded into a coloring-hashed table."""

    def __init__(self, database=None, max_columns=None):
        self.database = database if database is not None else Database()
        self.max_columns = max_columns
        self.coloring = None
        self.stats = HashAttributeStats()
        self._next_overflow = 0

    # ------------------------------------------------------------------
    def load_graph(self, graph, element="vertex"):
        self.coloring = ColoringHash(self.max_columns).fit(
            attribute_key_sets(graph, element)
        )
        columns = ["vid INTEGER"]
        for i in range(self.coloring.num_columns):
            columns.append(f"attr{i} STRING")
            columns.append(f"type{i} STRING")
            columns.append(f"val{i} STRING")
        self.database.execute(f"CREATE TABLE vah ({', '.join(columns)})")
        self.database.execute(
            "CREATE TABLE vah_long (lsid STRING, val STRING)"
        )
        self.database.execute(
            "CREATE TABLE vah_multi (mvid STRING, type STRING, val STRING)"
        )
        self.database.execute("CREATE INDEX vah_vid ON vah (vid)")
        self.database.execute("CREATE INDEX vah_long_id ON vah_long (lsid)")
        self.database.execute("CREATE INDEX vah_multi_id ON vah_multi (mvid)")
        self.stats.hashed_keys = len(self.coloring)
        self.stats.columns = self.coloring.num_columns
        self._load_rows(graph, element)

    def _load_rows(self, graph, element):
        table = self.database.table("vah")
        long_table = self.database.table("vah_long")
        multi_table = self.database.table("vah_multi")
        width = 1 + 3 * self.coloring.num_columns
        elements = graph.vertices() if element == "vertex" else graph.edges()
        for item in elements:
            if not item.properties:
                continue
            self.stats.vertices += 1
            rows = [self._fresh_row(item.id, width)]
            for key in sorted(item.properties):
                value = item.properties[key]
                column = self.coloring.column_for(key)
                attr_pos = 1 + 3 * column
                row = self._row_with_free_slot(rows, attr_pos, item.id, width)
                if isinstance(value, (list, tuple)):
                    marker = self._allocate("mv")
                    for entry in value:
                        multi_table.insert(
                            (marker, _type_name(entry), str(entry)),
                            coerce=False,
                        )
                        self.stats.multi_value_rows += 1
                    row[attr_pos] = key
                    row[attr_pos + 1] = "MULTI"
                    row[attr_pos + 2] = marker
                    continue
                stored = str(value)
                type_name = _type_name(value)
                if isinstance(value, str) and len(stored) > LONG_STRING_THRESHOLD:
                    marker = self._allocate("lsid")
                    long_table.insert((marker, stored), coerce=False)
                    self.stats.long_string_rows += 1
                    stored = marker
                    type_name = "LONGSTRING"
                row[attr_pos] = key
                row[attr_pos + 1] = type_name
                row[attr_pos + 2] = stored
            if len(rows) > 1:
                self.stats.spill_rows += len(rows) - 1
            for row in rows:
                table.insert(tuple(row), coerce=False)

    @staticmethod
    def _fresh_row(vid, width):
        row = [None] * width
        row[0] = vid
        return row

    @staticmethod
    def _row_with_free_slot(rows, attr_pos, vid, width):
        for row in rows:
            if row[attr_pos] is None:
                return row
        row = HashAttributeTable._fresh_row(vid, width)
        rows.append(row)
        return row

    def _allocate(self, kind):
        self._next_overflow += 1
        return f"{kind}:{self._next_overflow}"

    # ------------------------------------------------------------------
    # query builders for the Table 2 micro-benchmark
    # ------------------------------------------------------------------
    def create_value_index(self, key, sorted_index=True):
        """Index the VAL column that *key* hashes to (paper: "we added
        indexes for queried keys")."""
        column = self.coloring.column_for(key)
        method = "sorted" if sorted_index else "hash"
        safe = "".join(ch if ch.isalnum() else "_" for ch in key)
        self.database.execute(
            f"CREATE INDEX vah_val_{safe}_{column} ON vah (val{column}) "
            f"USING {method}"
        )

    def exists_sql(self, key):
        """``key is not null`` lookup."""
        column = self.coloring.column_for(key)
        return (
            f"SELECT vid FROM vah WHERE attr{column} = '{key}'"
        )

    def string_lookup_sql(self, key, like_pattern=None, equals=None):
        column = self.coloring.column_for(key)
        base = f"SELECT vid FROM vah WHERE attr{column} = '{key}'"
        if like_pattern is not None:
            escaped = like_pattern.replace("'", "''")
            return f"{base} AND val{column} LIKE '{escaped}'"
        escaped = str(equals).replace("'", "''")
        return f"{base} AND val{column} = '{escaped}'"

    def numeric_lookup_sql(self, key, op="=", value=0):
        """Numeric predicates require a CAST over the string VAL column —
        the shredded layout's structural disadvantage."""
        column = self.coloring.column_for(key)
        return (
            f"SELECT vid FROM vah WHERE attr{column} = '{key}' "
            f"AND CAST(val{column} AS DOUBLE) {op} {value}"
        )

    def storage_bytes(self):
        return self.database.storage_bytes()
