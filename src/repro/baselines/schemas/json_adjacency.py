"""JSON-document adjacency storage (paper Figure 2c).

Each vertex's entire adjacency list is one JSON document::

    { "knows":   [ {"eid": 7, "val": 2}, {"eid": 8, "val": 4} ],
      "created": [ {"eid": 9, "val": 3} ] }

stored as *text* in a relational table (``vid, out_edges, in_edges``) — the
document must be parsed on every access, which is precisely why the paper's
adjacency micro-benchmark (Figure 3) finds this layout slower than the
shredded hash tables: traversals pay a whole-document deserialization per
visited vertex, and multi-hop queries cannot be answered as one set-oriented
join pipeline.

Traversal here is hop-by-hop: an index join fetches the frontier's
documents, then Python extracts the neighbour ids (standing in for the
engine's JSON operators).
"""

from __future__ import annotations

import json

from repro.relational.database import Database


class JsonAdjacencyStore:
    """Adjacency-as-JSON baseline over the relational engine."""

    def __init__(self, database=None):
        self.database = database if database is not None else Database()
        self.database.execute(
            "CREATE TABLE jadj (vid INTEGER PRIMARY KEY, out_edges STRING, "
            "in_edges STRING)"
        )

    # ------------------------------------------------------------------
    def load_graph(self, graph):
        table = self.database.table("jadj")
        for vertex in graph.vertices():
            out_doc = {
                label: [
                    {"eid": edge.id, "val": edge.in_vertex.id} for edge in bucket
                ]
                for label, bucket in vertex.out_edges.items()
                if bucket
            }
            in_doc = {
                label: [
                    {"eid": edge.id, "val": edge.out_vertex.id} for edge in bucket
                ]
                for label, bucket in vertex.in_edges.items()
                if bucket
            }
            table.insert(
                (vertex.id, json.dumps(out_doc), json.dumps(in_doc)),
                coerce=False,
            )

    # ------------------------------------------------------------------
    def neighbors(self, vertex_ids, direction="out", labels=()):
        """One traversal hop for a frontier of vertex ids."""
        if not vertex_ids:
            return []
        rendered = ", ".join(str(int(v)) for v in sorted(set(vertex_ids)))
        column = "out_edges" if direction == "out" else "in_edges"
        result = self.database.execute(
            f"SELECT {column} FROM jadj WHERE vid IN ({rendered})"
        )
        out = []
        for (document,) in result.rows:
            parsed = json.loads(document)
            if labels:
                buckets = (parsed.get(label, ()) for label in labels)
            else:
                buckets = parsed.values()
            for bucket in buckets:
                for entry in bucket:
                    out.append(entry["val"])
        return out

    def k_hop(self, start_ids, hops, direction="out", labels=(),
              undirected=False):
        """k-hop traversal, hop-by-hop (duplicates preserved per hop set).

        With ``undirected=True`` each hop expands in both directions, the
        way the paper's ``team`` queries ignore edge direction.
        """
        frontier = list(start_ids)
        for __ in range(hops):
            if undirected:
                frontier = self.neighbors(frontier, "out", labels) + (
                    self.neighbors(frontier, "in", labels)
                )
            else:
                frontier = self.neighbors(frontier, direction, labels)
            frontier = list(dict.fromkeys(frontier))
        return frontier

    def storage_bytes(self):
        return self.database.storage_bytes()
