"""Alternative storage schemas for the §3 micro-benchmarks.

* :mod:`repro.baselines.schemas.json_adjacency` — the whole adjacency list
  of each vertex as one JSON document (Figure 2c), the losing arm of the
  adjacency micro-benchmark (Figure 3);
* :mod:`repro.baselines.schemas.hash_attributes` — vertex attributes
  shredded into a coloring-hashed relational table with long-string and
  multi-value overflow tables (Figure 2d), the losing arm of the attribute
  lookup micro-benchmark (Figure 4) and the source of the Table 3 spill
  statistics.
"""

from repro.baselines.schemas.hash_attributes import HashAttributeTable
from repro.baselines.schemas.json_adjacency import JsonAdjacencyStore

__all__ = ["HashAttributeTable", "JsonAdjacencyStore"]
