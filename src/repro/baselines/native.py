"""A Neo4j-like native graph store.

Architecture being simulated:

* native in-memory adjacency structures (fast per-element navigation),
* Gremlin evaluated pipe-at-a-time through Blueprints primitives — one
  client/server round trip per primitive call,
* optional user attribute indexes for ``g.V(key, value)`` start pipes,
* a single store-wide write lock (readers proceed concurrently, writers
  serialize), a coarser concurrency model than the relational engine's
  per-table locking.
"""

from __future__ import annotations

import threading

from repro.baselines.latency import ClientServerLink
from repro.graph.blueprints import GraphInterface
from repro.graph.model import PropertyGraph
from repro.gremlin.interpreter import GremlinInterpreter
from repro.gremlin.parser import parse_gremlin
from repro.relational.locks import ReadWriteLock


class NativeGraphStore(GraphInterface):
    """In-memory adjacency store with pipe-at-a-time Gremlin execution."""

    def __init__(self, client=None):
        self.graph = PropertyGraph()
        self.client = client if client is not None else ClientServerLink()
        self._interpreter = GremlinInterpreter(self)
        self._write_lock = ReadWriteLock("native-store")
        self._indexes: dict[str, dict] = {}  # key -> value -> [vertex ids]

    # ------------------------------------------------------------------
    # loading / indexing
    # ------------------------------------------------------------------
    def load_graph(self, graph):
        """Adopt *graph* (shared, not copied) as the stored data."""
        self.graph = graph
        for key in self._indexes:
            self._rebuild_index(key)

    def create_attribute_index(self, key):
        self._indexes[key] = {}
        self._rebuild_index(key)

    def has_attribute_index(self, key):
        return key in self._indexes

    def _rebuild_index(self, key):
        index = self._indexes[key] = {}
        for vertex in self.graph.vertices():
            value = vertex.get_property(key)
            if value is not None:
                index.setdefault(value, []).append(vertex.id)

    # ------------------------------------------------------------------
    # Gremlin (pipe-at-a-time, chatty)
    # ------------------------------------------------------------------
    def query(self, gremlin_text):
        """Evaluate a Gremlin query; returns the list of result objects."""
        parsed = parse_gremlin(gremlin_text)
        self._write_lock.acquire_read()
        try:
            return self._interpreter.run(parsed)
        finally:
            self._write_lock.release_read()

    def run(self, gremlin_text):
        """Like query(), but maps elements to their ids (comparable to
        SQLGraphStore.run)."""
        out = []
        for value in self.query(gremlin_text):
            if hasattr(value, "id") and hasattr(value, "get_property"):
                out.append(value.id)
            elif isinstance(value, (list, tuple)):
                out.append(
                    tuple(v.id if hasattr(v, "id") else v for v in value)
                )
            else:
                out.append(value)
        return out

    # ------------------------------------------------------------------
    # interpreter data-access hooks: every call is one round trip
    # ------------------------------------------------------------------
    def adjacent_vertices(self, vertex, direction, labels):
        self.client.round_trip()
        return vertex.vertices(direction, labels)

    def incident_edges(self, vertex, direction, labels):
        self.client.round_trip()
        return vertex.edges(direction, labels)

    def edge_endpoint(self, edge, direction):
        self.client.round_trip()
        return edge.vertex(direction)

    def element_property(self, element, key):
        self.client.round_trip()
        if key == "id":
            return element.id
        if key == "label" and hasattr(element, "label"):
            return element.label
        return element.get_property(key)

    def lookup_vertices(self, key, value):
        self.client.round_trip()
        index = self._indexes.get(key)
        if index is not None:
            return [
                self.graph.get_vertex(vertex_id)
                for vertex_id in index.get(value, [])
            ]
        return [
            vertex
            for vertex in self.graph.vertices()
            if vertex.get_property(key) == value
        ]

    # ------------------------------------------------------------------
    # Blueprints CRUD (writes take the global write lock)
    # ------------------------------------------------------------------
    def get_vertex(self, vertex_id):
        self.client.round_trip()
        return self.graph.get_vertex(vertex_id)

    def get_edge(self, edge_id):
        self.client.round_trip()
        return self.graph.get_edge(edge_id)

    def vertices(self):
        self.client.round_trip()
        return self.graph.vertices()

    def edges(self):
        self.client.round_trip()
        return self.graph.edges()

    def vertex_count(self):
        return self.graph.vertex_count()

    def edge_count(self):
        return self.graph.edge_count()

    def _write(self, fn):
        self.client.round_trip()
        self._write_lock.acquire_write()
        try:
            return fn()
        finally:
            self._write_lock.release_write()

    def add_vertex(self, vertex_id=None, properties=None):
        return self._write(lambda: self.graph.add_vertex(vertex_id, properties))

    def add_edge(self, out_vertex_id, in_vertex_id, label, edge_id=None,
                 properties=None):
        return self._write(
            lambda: self.graph.add_edge(
                out_vertex_id, in_vertex_id, label, edge_id, properties
            )
        )

    def remove_vertex(self, vertex_id):
        return self._write(lambda: self.graph.remove_vertex(vertex_id))

    def remove_edge(self, edge_id):
        return self._write(lambda: self.graph.remove_edge(edge_id))

    def set_vertex_property(self, vertex_id, key, value):
        def apply():
            self.graph.set_vertex_property(vertex_id, key, value)
            index = self._indexes.get(key)
            if index is not None:
                index.setdefault(value, []).append(vertex_id)

        return self._write(apply)

    def set_edge_property(self, edge_id, key, value):
        return self._write(
            lambda: self.graph.set_edge_property(edge_id, key, value)
        )
