"""A Titan/BerkeleyDB-like key-value backed graph store.

Architecture being simulated:

* all graph data lives in one sorted key-value map (BerkeleyDB B-tree
  style): vertex records, edge records, and adjacency entries keyed by
  ``(vid, direction, label, eid)`` so neighbourhoods are contiguous ranges;
* every value is serialized; each read pays real deserialization work
  (Titan's storage-backend serialization overhead);
* Gremlin runs pipe-at-a-time through Blueprints primitives, one
  client/server round trip per call;
* writes serialize behind a store-wide lock.
"""

from __future__ import annotations

import bisect
import pickle

from repro.baselines.latency import ClientServerLink
from repro.graph.blueprints import Direction, GraphInterface
from repro.gremlin.interpreter import GremlinInterpreter
from repro.gremlin.parser import parse_gremlin
from repro.relational.locks import ReadWriteLock


class SortedKV:
    """A sorted map of tuple keys to pickled values."""

    def __init__(self):
        self._keys = []
        self._values = {}
        self.reads = 0
        self.writes = 0

    def put(self, key, value):
        self.writes += 1
        if key not in self._values:
            bisect.insort(self._keys, key)
        self._values[key] = pickle.dumps(value, protocol=5)

    def bulk_load(self, items):
        """Load many (key, value) pairs, sorting once."""
        for key, value in items:
            self._values[key] = pickle.dumps(value, protocol=5)
            self.writes += 1
        self._keys = sorted(self._values)

    def get(self, key):
        self.reads += 1
        blob = self._values.get(key)
        return None if blob is None else pickle.loads(blob)

    def delete(self, key):
        if key in self._values:
            del self._values[key]
            position = bisect.bisect_left(self._keys, key)
            if position < len(self._keys) and self._keys[position] == key:
                del self._keys[position]
            return True
        return False

    def scan_prefix(self, prefix):
        """Yield (key, value) for keys starting with tuple *prefix*."""
        position = bisect.bisect_left(self._keys, prefix)
        n = len(prefix)
        while position < len(self._keys):
            key = self._keys[position]
            if key[:n] != prefix:
                break
            self.reads += 1
            yield key, pickle.loads(self._values[key])
            position += 1

    def __len__(self):
        return len(self._keys)

    def storage_bytes(self):
        return sum(len(blob) for blob in self._values.values())


class KVVertex:
    """Lazy vertex handle over the KV store."""

    __slots__ = ("_store", "id", "_props")

    def __init__(self, store, vertex_id, props=None):
        self._store = store
        self.id = vertex_id
        self._props = props

    @property
    def properties(self):
        if self._props is None:
            self._props = self._store._kv.get(("v", self.id)) or {}
        return self._props

    def get_property(self, key, default=None):
        return self.properties.get(key, default)

    def edges(self, direction, labels=()):
        return self._store._vertex_edges(self.id, direction, labels)

    def vertices(self, direction, labels=()):
        return self._store._vertex_neighbors(self.id, direction, labels)

    def __repr__(self):
        return f"KVVertex({self.id})"


class KVEdge:
    """Lazy edge handle over the KV store."""

    __slots__ = ("_store", "id", "outv", "inv", "label", "properties")

    def __init__(self, store, edge_id, record):
        self._store = store
        self.id = edge_id
        self.outv, self.inv, self.label, self.properties = record

    def get_property(self, key, default=None):
        return self.properties.get(key, default)

    def vertex(self, direction):
        if direction is Direction.OUT:
            return self._store._vertex_handle(self.outv)
        if direction is Direction.IN:
            return self._store._vertex_handle(self.inv)
        raise ValueError("edge endpoint requires OUT or IN")

    def __repr__(self):
        return f"KVEdge({self.id})"


class KVGraphStore(GraphInterface):
    """Graph store over :class:`SortedKV` with pipe-at-a-time Gremlin."""

    def __init__(self, client=None):
        self._kv = SortedKV()
        self.client = client if client is not None else ClientServerLink()
        self._interpreter = GremlinInterpreter(self)
        self._write_lock = ReadWriteLock("kv-store")
        self._indexes: set[str] = set()
        self._vertex_ids = set()
        self._edge_count = 0

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load_graph(self, graph):
        items = []
        for vertex in graph.vertices():
            items.append((("v", vertex.id), dict(vertex.properties)))
            self._vertex_ids.add(vertex.id)
        for edge in graph.edges():
            src, dst = edge.out_vertex.id, edge.in_vertex.id
            record = (src, dst, edge.label, dict(edge.properties))
            items.append((("e", edge.id), record))
            items.append((("adj", src, "o", edge.label, edge.id), dst))
            items.append((("adj", dst, "i", edge.label, edge.id), src))
            self._edge_count += 1
        self._kv.bulk_load(items)

    def create_attribute_index(self, key):
        self._indexes.add(key)
        items = []
        for vertex_id in self._vertex_ids:
            props = self._kv.get(("v", vertex_id)) or {}
            value = props.get(key)
            if value is not None:
                items.append((("idx", key, repr(value), vertex_id), None))
        self._kv.bulk_load(items)

    def has_attribute_index(self, key):
        return key in self._indexes

    # ------------------------------------------------------------------
    # Gremlin
    # ------------------------------------------------------------------
    def query(self, gremlin_text):
        parsed = parse_gremlin(gremlin_text)
        self._write_lock.acquire_read()
        try:
            return self._interpreter.run(parsed)
        finally:
            self._write_lock.release_read()

    def run(self, gremlin_text):
        out = []
        for value in self.query(gremlin_text):
            if hasattr(value, "id") and hasattr(value, "get_property"):
                out.append(value.id)
            elif isinstance(value, (list, tuple)):
                out.append(tuple(v.id if hasattr(v, "id") else v for v in value))
            else:
                out.append(value)
        return out

    # ------------------------------------------------------------------
    # adjacency plumbing
    # ------------------------------------------------------------------
    def _vertex_handle(self, vertex_id):
        return KVVertex(self, vertex_id)

    def _vertex_edges(self, vertex_id, direction, labels=()):
        edges = []
        directions = (
            ("o", "i") if direction is Direction.BOTH
            else ("o",) if direction is Direction.OUT else ("i",)
        )
        for tag in directions:
            if labels:
                for label in labels:
                    for key, __ in self._kv.scan_prefix(
                        ("adj", vertex_id, tag, label)
                    ):
                        edges.append(self._edge_handle(key[4]))
            else:
                for key, __ in self._kv.scan_prefix(("adj", vertex_id, tag)):
                    edges.append(self._edge_handle(key[4]))
        return edges

    def _vertex_neighbors(self, vertex_id, direction, labels=()):
        neighbors = []
        directions = (
            ("o", "i") if direction is Direction.BOTH
            else ("o",) if direction is Direction.OUT else ("i",)
        )
        for tag in directions:
            if labels:
                for label in labels:
                    for __, other in self._kv.scan_prefix(
                        ("adj", vertex_id, tag, label)
                    ):
                        neighbors.append(self._vertex_handle(other))
            else:
                for __, other in self._kv.scan_prefix(("adj", vertex_id, tag)):
                    neighbors.append(self._vertex_handle(other))
        return neighbors

    def _edge_handle(self, edge_id):
        record = self._kv.get(("e", edge_id))
        return None if record is None else KVEdge(self, edge_id, record)

    # ------------------------------------------------------------------
    # interpreter hooks (one round trip per primitive call)
    # ------------------------------------------------------------------
    def adjacent_vertices(self, vertex, direction, labels):
        self.client.round_trip()
        return self._vertex_neighbors(vertex.id, direction, labels)

    def incident_edges(self, vertex, direction, labels):
        self.client.round_trip()
        return self._vertex_edges(vertex.id, direction, labels)

    def edge_endpoint(self, edge, direction):
        self.client.round_trip()
        return edge.vertex(direction)

    def element_property(self, element, key):
        self.client.round_trip()
        if key == "id":
            return element.id
        if key == "label" and hasattr(element, "label"):
            return element.label
        return element.get_property(key)

    def lookup_vertices(self, key, value):
        self.client.round_trip()
        if key in self._indexes:
            return [
                self._vertex_handle(entry_key[3])
                for entry_key, __ in self._kv.scan_prefix(
                    ("idx", key, repr(value))
                )
            ]
        return [
            KVVertex(self, vertex_id, props)
            for vertex_id, props in (
                (vid, self._kv.get(("v", vid))) for vid in sorted(self._vertex_ids)
            )
            if props and props.get(key) == value
        ]

    # ------------------------------------------------------------------
    # Blueprints CRUD
    # ------------------------------------------------------------------
    def get_vertex(self, vertex_id):
        self.client.round_trip()
        props = self._kv.get(("v", vertex_id))
        return None if props is None else KVVertex(self, vertex_id, props)

    def get_edge(self, edge_id):
        self.client.round_trip()
        return self._edge_handle(edge_id)

    def vertices(self):
        self.client.round_trip()
        return (
            KVVertex(self, key[1], props)
            for key, props in self._kv.scan_prefix(("v",))
        )

    def edges(self):
        self.client.round_trip()
        return (
            KVEdge(self, key[1], record)
            for key, record in self._kv.scan_prefix(("e",))
        )

    def vertex_count(self):
        return len(self._vertex_ids)

    def edge_count(self):
        return self._edge_count

    def _write(self, fn):
        self.client.round_trip()
        self._write_lock.acquire_write()
        try:
            return fn()
        finally:
            self._write_lock.release_write()

    def add_vertex(self, vertex_id=None, properties=None):
        def apply():
            vid = vertex_id
            if vid is None:
                vid = (max(self._vertex_ids) + 1) if self._vertex_ids else 1
            self._kv.put(("v", vid), dict(properties or {}))
            self._vertex_ids.add(vid)
            return KVVertex(self, vid, dict(properties or {}))

        return self._write(apply)

    def add_edge(self, out_vertex_id, in_vertex_id, label, edge_id=None,
                 properties=None):
        def apply():
            eid = edge_id
            if eid is None:
                eid = self._edge_count + 1_000_000_000
            record = (out_vertex_id, in_vertex_id, label, dict(properties or {}))
            self._kv.put(("e", eid), record)
            self._kv.put(("adj", out_vertex_id, "o", label, eid), in_vertex_id)
            self._kv.put(("adj", in_vertex_id, "i", label, eid), out_vertex_id)
            self._edge_count += 1
            return KVEdge(self, eid, record)

        return self._write(apply)

    def remove_edge(self, edge_id):
        def apply():
            record = self._kv.get(("e", edge_id))
            if record is None:
                return False
            src, dst, label, __ = record
            self._kv.delete(("e", edge_id))
            self._kv.delete(("adj", src, "o", label, edge_id))
            self._kv.delete(("adj", dst, "i", label, edge_id))
            self._edge_count -= 1
            return True

        return self._write(apply)

    def remove_vertex(self, vertex_id):
        def apply():
            if vertex_id not in self._vertex_ids:
                return False
            incident = [
                key[4]
                for key, __ in list(self._kv.scan_prefix(("adj", vertex_id)))
            ]
            for edge_id in incident:
                record = self._kv.get(("e", edge_id))
                if record is None:
                    continue
                src, dst, label, __props = record
                self._kv.delete(("e", edge_id))
                self._kv.delete(("adj", src, "o", label, edge_id))
                self._kv.delete(("adj", dst, "i", label, edge_id))
                self._edge_count -= 1
            self._kv.delete(("v", vertex_id))
            self._vertex_ids.discard(vertex_id)
            return True

        return self._write(apply)

    def set_vertex_property(self, vertex_id, key, value):
        def apply():
            props = self._kv.get(("v", vertex_id)) or {}
            props[key] = value
            self._kv.put(("v", vertex_id), props)
            if key in self._indexes:
                self._kv.put(("idx", key, repr(value), vertex_id), None)

        return self._write(apply)

    def set_edge_property(self, edge_id, key, value):
        def apply():
            record = self._kv.get(("e", edge_id))
            if record is None:
                return False
            src, dst, label, props = record
            props[key] = value
            self._kv.put(("e", edge_id), (src, dst, label, props))
            return True

        return self._write(apply)

    def storage_bytes(self):
        return self._kv.storage_bytes()
