"""A threaded socket server exposing one shared SQLGraphStore.

Architecture (see ``docs/SERVER.md``)::

    accept thread ──> bounded accept queue ──> worker pool (N threads)
                         │ full?                    │
                         └─ SERVER_BUSY + close     └─ one connection ==
                            (fast-fail backpressure)   one session ==
                                                       one worker thread

*Admission control* is the queue + pool pair: at most ``max_workers``
sessions run concurrently, at most ``max_queue`` connections wait, and
everything beyond that is rejected immediately with a retryable
``SERVER_BUSY`` error instead of being allowed to pile up.

A worker serves its connection until the client disconnects, the session
idles out, or the server drains.  Pinning a session to one thread is
load-bearing: the engine keeps the current transaction, statement stats
and translation traces in thread-locals, so session isolation falls out
of thread isolation.

*Graceful shutdown* (:meth:`SQLGraphServer.shutdown`): stop accepting,
reject queued/new work with ``SHUTTING_DOWN``, let in-flight requests and
open transactions finish within the drain window (stragglers are rolled
back), then checkpoint the store and close the WAL.
"""

from __future__ import annotations

import queue
import socket
import threading
from time import monotonic, perf_counter

from repro.graph.analytics import AnalyticsTimeoutError
from repro.obs import context as obs_context
from repro.obs.metrics import ENGINE_METRICS, TimingHistogram
from repro.relational.database import Transaction
from repro.relational.errors import LockTimeoutError, TransactionError
from repro.server import protocol
from repro.server.protocol import (
    BAD_REQUEST,
    FrameAssembler,
    FrameError,
    ConnectionClosedError,
    PROTOCOL_ERROR,
    PROTOCOL_VERSION,
    SERVER_BUSY,
    SESSION_IDLE,
    SHUTTING_DOWN,
    STATEMENT_TIMEOUT,
    UNSUPPORTED_PROTOCOL,
    code_for_exception,
    error_payload,
    jsonable_rows,
    recv_message,
    send_message,
)
from repro.server.session import Session

SERVER_NAME = "sqlgraph-server/1.0"


class SQLGraphServer:
    """Serve Gremlin/SQL requests against one shared store.

    :param store: a loaded :class:`~repro.core.store.SQLGraphStore`.
    :param host/port: bind address; port 0 picks an ephemeral port
        (read :attr:`port` after :meth:`start`).
    :param max_workers: concurrent session cap (worker pool size).
    :param max_queue: accepted-but-unserved connection cap; beyond it new
        connections are fast-failed with ``SERVER_BUSY``.
    :param idle_timeout_s: reap sessions silent for this long (``None``
        disables).  Covers half-open TCP peers: the reaper closes the
        socket and rolls back any open transaction.
    :param statement_timeout_s: default per-statement budget; bounds lock
        waits (cooperative — running operators are not interrupted) and
        maps to the retryable ``STATEMENT_TIMEOUT`` wire error.
    :param drain_timeout_s: grace window for open transactions at
        shutdown before they are rolled back.
    """

    POLL_INTERVAL_S = 0.1

    def __init__(self, store, host="127.0.0.1", port=0, max_workers=8,
                 max_queue=16, idle_timeout_s=None, statement_timeout_s=None,
                 drain_timeout_s=5.0):
        self.store = store
        self.host = host
        self._requested_port = port
        self.port = None
        self.max_workers = max_workers
        self.max_queue = max_queue
        self.idle_timeout_s = idle_timeout_s
        self.statement_timeout_s = statement_timeout_s
        self.drain_timeout_s = drain_timeout_s

        self._listener = None
        self._accept_thread = None
        self._workers = []
        self._pending = queue.Queue(maxsize=max(1, max_queue))
        self._sessions_guard = threading.Lock()
        self._sessions = {}  # guarded-by: _sessions_guard
        self._next_session_id = 1  # guarded-by: _sessions_guard
        self._started = threading.Event()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._drain_deadline = None

        # always-on serving counters; mirrored into ENGINE_METRICS (the
        # PR 1 registry) when it is enabled, like the WAL/cache counters.
        # _count() bumps them via getattr/setattr under the guard, which
        # the guarded-by checker cannot see through — direct accesses are
        # what the annotations police.
        self._counters_guard = threading.Lock()
        self.requests_served = 0  # guarded-by: _counters_guard
        self.errors_returned = 0  # guarded-by: _counters_guard
        self.rejected_busy = 0  # guarded-by: _counters_guard
        self.rejected_shutdown = 0  # guarded-by: _counters_guard
        self.idle_reaped = 0  # guarded-by: _counters_guard
        self.statement_timeouts = 0  # guarded-by: _counters_guard
        self.sessions_opened = 0  # guarded-by: _counters_guard
        self.protocol_errors = 0  # guarded-by: _counters_guard
        # guarded-by: _counters_guard
        self.request_latency = TimingHistogram("server.request_seconds")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Bind, listen, and spin up the accept loop + worker pool."""
        if self._started.is_set():
            raise RuntimeError("server already started")
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.host, self._requested_port))
        self._listener.listen(self.max_queue + self.max_workers)
        self._listener.settimeout(self.POLL_INTERVAL_S)
        self.port = self._listener.getsockname()[1]
        self._started.set()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="sqlgraph-accept", daemon=True
        )
        self._accept_thread.start()
        for i in range(self.max_workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"sqlgraph-worker-{i}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        return self

    def shutdown(self, drain_timeout_s=None):
        """Graceful stop: drain, reject new work, checkpoint, close WAL."""
        if not self._started.is_set() or self._stopped.is_set():
            return
        if drain_timeout_s is None:
            drain_timeout_s = self.drain_timeout_s
        self._drain_deadline = monotonic() + drain_timeout_s
        self._draining.set()
        try:
            self._listener.close()
        except OSError:
            pass
        # fast-fail everything still waiting for a worker
        while True:
            try:
                conn, __addr = self._pending.get_nowait()
            except queue.Empty:
                break
            self._reject(conn, SHUTTING_DOWN, "server is shutting down")
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=drain_timeout_s + 1.0)
        for worker in self._workers:
            worker.join(timeout=drain_timeout_s + 1.0)
        # stragglers past the drain window: force the sockets closed (the
        # worker's next recv fails and its cleanup rolls the session back)
        with self._sessions_guard:
            leftover = list(self._sessions.values())
        for __session, sock in leftover:
            try:
                sock.close()
            except OSError:
                pass
        for worker in self._workers:
            worker.join(timeout=1.0)
        self.store.close()  # checkpoint + close the WAL (idempotent)
        self._stopped.set()

    def wait_stopped(self, timeout=None):
        return self._stopped.wait(timeout)

    @property
    def draining(self):
        return self._draining.is_set()

    # ------------------------------------------------------------------
    # accept loop + admission control
    # ------------------------------------------------------------------
    def _accept_loop(self):
        while not self._draining.is_set():
            try:
                conn, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed by shutdown()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if self._draining.is_set():
                self._reject(conn, SHUTTING_DOWN, "server is shutting down")
                continue
            try:
                self._pending.put_nowait((conn, addr))
                self._mirror_gauge("server.queue_depth", self._pending.qsize())
            except queue.Full:
                self._reject(
                    conn, SERVER_BUSY,
                    f"all {self.max_workers} workers busy and the accept "
                    f"queue of {self.max_queue} is full; retry later",
                )

    def _reject(self, conn, code, message):
        """Best-effort typed error + close for a connection we won't serve."""
        if code == SERVER_BUSY:
            self._count("rejected_busy")
        elif code == SHUTTING_DOWN:
            self._count("rejected_shutdown")
        try:
            conn.settimeout(1.0)
            send_message(conn, {
                "id": None, "ok": False,
                "error": error_payload(code, message),
            })
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # worker pool
    # ------------------------------------------------------------------
    def _worker_loop(self):
        while True:
            try:
                conn, addr = self._pending.get(timeout=self.POLL_INTERVAL_S)
            except queue.Empty:
                if self._draining.is_set():
                    return
                continue
            self._mirror_gauge("server.queue_depth", self._pending.qsize())
            if self._draining.is_set():
                self._reject(conn, SHUTTING_DOWN, "server is shutting down")
                continue
            try:
                self._serve_connection(conn, addr)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # one session
    # ------------------------------------------------------------------
    def _serve_connection(self, conn, addr):
        peer = f"{addr[0]}:{addr[1]}"
        conn.settimeout(self.POLL_INTERVAL_S)
        assembler = FrameAssembler()
        session = None
        try:
            session = self._handshake(conn, assembler, peer)
            if session is None:
                return
            with obs_context.session_scope(session.session_id, peer):
                self._session_loop(conn, assembler, session)
        except (ConnectionClosedError, OSError):
            pass  # client went away; cleanup below
        except FrameError as exc:
            self._count("protocol_errors")
            self._reject_frame_error(conn, exc)
        finally:
            if session is not None:
                self._close_session(session)

    def _handshake(self, conn, assembler, peer):
        """Run the hello exchange; returns a Session or None (rejected)."""
        deadline = monotonic() + 5.0
        while True:
            message = recv_message(conn, assembler)
            if message is not None:
                break
            if monotonic() > deadline:
                self._reject(conn, PROTOCOL_ERROR, "handshake timeout")
                return None
        if message.get("op") != "hello":
            self._reject(
                conn, PROTOCOL_ERROR,
                "first frame must be a hello, got "
                f"{message.get('op')!r}",
            )
            return None
        version = message.get("protocol")
        if version != PROTOCOL_VERSION:
            self._count("protocol_errors")
            self._reject(
                conn, UNSUPPORTED_PROTOCOL,
                f"server speaks protocol {PROTOCOL_VERSION}, "
                f"client asked for {version!r}",
            )
            return None
        with self._sessions_guard:
            session_id = self._next_session_id
            self._next_session_id += 1
        session = Session(
            session_id, peer, statement_timeout_s=self.statement_timeout_s
        )
        session.client_name = message.get("client")
        with self._sessions_guard:
            self._sessions[session_id] = (session, conn)
            active = len(self._sessions)
        self._count("sessions_opened")
        self._mirror_gauge("server.active_sessions", active)
        self._send(conn, {
            "op": "hello",
            "protocol": PROTOCOL_VERSION,
            "server": SERVER_NAME,
            "session": session_id,
        })
        return session

    def _session_loop(self, conn, assembler, session):
        while True:
            message = recv_message(conn, assembler)
            if message is None:
                # poll tick: idle reaping + drain handling
                if self._draining.is_set() and not session.in_transaction:
                    session.closing_reason = SHUTTING_DOWN
                    self._notify_close(
                        conn, SHUTTING_DOWN, "server is shutting down"
                    )
                    return
                if (
                    self._draining.is_set()
                    and self._drain_deadline is not None
                    and monotonic() > self._drain_deadline
                ):
                    session.closing_reason = SHUTTING_DOWN
                    self._notify_close(
                        conn, SHUTTING_DOWN,
                        "drain window elapsed; open transaction rolled back",
                    )
                    return
                if (
                    self.idle_timeout_s is not None
                    and session.idle_for() >= self.idle_timeout_s
                ):
                    self._count("idle_reaped")
                    session.closing_reason = SESSION_IDLE
                    self._notify_close(
                        conn, SESSION_IDLE,
                        f"session idle for more than {self.idle_timeout_s}s",
                    )
                    return
                continue
            session.touch()
            if self._draining.is_set() and not session.in_transaction:
                # in-flight requests finished; everything new is rejected
                self._send(conn, self._error_response(
                    session, message.get("id"),
                    SHUTTING_DOWN, "server is shutting down",
                ))
                session.closing_reason = SHUTTING_DOWN
                return
            response = self._handle_request(session, message)
            self._send(conn, response)
            session.touch()

    def _send(self, conn, message):
        """Send a response with a real (non-poll) timeout, then restore."""
        conn.settimeout(5.0)
        try:
            send_message(conn, message)
        finally:
            conn.settimeout(self.POLL_INTERVAL_S)

    def _notify_close(self, conn, code, message):
        try:
            self._send(conn, {
                "id": None, "ok": False,
                "error": error_payload(code, message),
            })
        except OSError:
            pass

    def _reject_frame_error(self, conn, exc):
        try:
            conn.settimeout(1.0)
            send_message(conn, {
                "id": None, "ok": False,
                "error": error_payload(PROTOCOL_ERROR, str(exc)),
            })
        except OSError:
            pass

    def _close_session(self, session):
        """Roll back any open transaction and drop the session entry."""
        transaction = session.transaction
        if transaction is not None and transaction.active:
            try:
                transaction.rollback()
            except Exception:  # reprolint: disable=broad-except -- best-effort rollback while tearing down a dead session; nothing to report to
                pass
        session.transaction = None
        with self._sessions_guard:
            self._sessions.pop(session.session_id, None)
            active = len(self._sessions)
        self._mirror_gauge("server.active_sessions", active)

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------
    def _handle_request(self, session, message):
        request_id = message.get("id")
        op = message.get("op")
        session.requests += 1
        started = perf_counter()
        try:
            handler = self._HANDLERS.get(op)
            if handler is None:
                raise _BadRequest(f"unknown op {op!r}")
            result = handler(self, session, message)
            response = {"id": request_id, "ok": True, "result": result}
        except _BadRequest as exc:
            response = self._error_response(session, request_id,
                                            BAD_REQUEST, str(exc))
        except LockTimeoutError as exc:
            code = protocol.LOCK_TIMEOUT
            budget = session.statement_timeout_s
            if budget is not None and perf_counter() - started >= budget:
                code = STATEMENT_TIMEOUT
                self._count("statement_timeouts")
            response = self._error_response(session, request_id, code,
                                            str(exc))
        except AnalyticsTimeoutError as exc:
            # an analytics driver hit the session's statement budget
            # between iterations (cooperative, not a lock wait)
            self._count("statement_timeouts")
            response = self._error_response(session, request_id,
                                            STATEMENT_TIMEOUT, str(exc))
        except Exception as exc:  # reprolint: disable=broad-except -- wire boundary: every failure maps to a typed error frame, never a dropped connection
            # a relayed WireError (e.g. a coordinator's per-request
            # SHARD_UNAVAILABLE) carries its own retryability verdict;
            # recomputing from the static table would flatten it
            retryable = (
                exc.retryable if isinstance(exc, protocol.WireError) else None
            )
            response = self._error_response(
                session, request_id, code_for_exception(exc),
                f"{type(exc).__name__}: {exc}", retryable=retryable,
            )
        elapsed = perf_counter() - started
        with self._counters_guard:
            self.requests_served += 1
            self.request_latency.observe(elapsed)
        if ENGINE_METRICS.enabled:
            ENGINE_METRICS.counter("server.requests").inc()
            ENGINE_METRICS.histogram("server.request_seconds").observe(elapsed)
        return response

    def _error_response(self, session, request_id, code, message,
                        retryable=None):
        session.errors += 1
        self._count("errors_returned")
        return {
            "id": request_id, "ok": False,
            "error": error_payload(code, message, retryable=retryable),
        }

    # -- ops ------------------------------------------------------------
    def _op_ping(self, session, message):
        return {"pong": True, "session": session.session_id}

    def _op_gremlin(self, session, message):
        query = _required(message, "query")
        with self._statement_budget(session):
            result = self.store.query(query)
        stats = self.store.last_query_stats
        return {
            "columns": result.columns,
            "rows": jsonable_rows(result.rows),
            "stats": {
                "elapsed_s": stats.elapsed_s,
                "translate_s": stats.translate_s,
                "translation_cache_hit": stats.translation_cache_hit,
                "plan_cache_hit": stats.plan_cache_hit,
                # routing info when the store is a sharded cluster facade
                "sharding": stats.sharding,
            },
        }

    def _op_run(self, session, message):
        query = _required(message, "query")
        with self._statement_budget(session):
            values = self.store.run(query)
        return {"values": list(values)}

    def _op_sql(self, session, message):
        query = _required(message, "query")
        params = message.get("params")
        with self._statement_budget(session):
            result = self.store.execute_sql(query, params)
        return {
            "columns": result.columns,
            "rows": jsonable_rows(result.rows),
            "rowcount": result.rowcount,
        }

    def _op_begin(self, session, message):
        database = self.store.database
        if database.current_transaction() is not None:
            raise TransactionError("session already has an open transaction")
        transaction = Transaction(database, database._begin_txid())
        database._local.txn = transaction
        if database.wal is not None:
            database.wal.set_txid(transaction.txid)
        session.transaction = transaction
        return {"txid": transaction.txid}

    def _op_commit(self, session, message):
        transaction = self._open_transaction(session)
        self.store.database._local.txn = None
        session.transaction = None
        transaction.commit()
        return {"committed": True}

    def _op_rollback(self, session, message):
        transaction = self._open_transaction(session)
        session.transaction = None
        transaction.rollback()  # clears the database thread-local itself
        return {"rolled_back": True}

    def _open_transaction(self, session):
        transaction = session.transaction
        if transaction is None or not transaction.active:
            raise TransactionError("session has no open transaction")
        return transaction

    def _op_set(self, session, message):
        settings = message.get("settings")
        if not isinstance(settings, dict):
            raise _BadRequest("set requires a 'settings' object")
        for key, value in settings.items():
            if key == "statement_timeout_ms":
                if value is None:
                    session.statement_timeout_s = None
                else:
                    session.statement_timeout_s = max(0.0, float(value)) / 1e3
            else:
                raise _BadRequest(f"unknown session setting {key!r}")
        return {"settings": {
            "statement_timeout_ms":
                None if session.statement_timeout_s is None
                else session.statement_timeout_s * 1000.0,
        }}

    def _op_stats(self, session, message):
        stats = self.store.last_query_stats
        return {
            "server": self.stats(),
            "session": session.describe(),
            "last_query": stats.as_dict() if stats is not None else None,
        }

    def _op_shell(self, session, message):
        """One REPL line, server-side — lets ``repro.cli --connect`` drive
        a remote store with the exact local shell semantics."""
        from repro.cli import execute_line

        line = _required(message, "line")
        try:
            output = execute_line(self.store, line)
        except SystemExit:
            raise _BadRequest(
                ":quit is client-side; just close the connection"
            )
        if line.strip() == ":stats":
            output = "\n".join([output] + self._stats_lines(session))
        return {"output": output}

    #: analytics algorithm -> (store method, accepted request options)
    _ANALYTICS = {
        "pagerank": ("pagerank", ("damping", "tolerance", "max_iterations")),
        "components": ("connected_components", ("max_iterations",)),
        "labelprop": ("label_propagation", ("max_iterations",)),
        "sssp": (
            "shortest_paths", ("source", "weight_key", "max_iterations")
        ),
    }

    def _op_analytics(self, session, message):
        """One full analytics run in one round trip.

        The session's statement timeout becomes the run's cooperative
        ``time_budget_s`` (checked between statements), and a draining
        server cancels the loop via the ``cancel`` callback — so a bulk
        run can never outlive the drain window or hold its budget
        hostage to a long iteration sequence.
        """
        algorithm = _required(message, "algorithm")
        if algorithm not in self._ANALYTICS:
            known = ", ".join(sorted(self._ANALYTICS))
            raise _BadRequest(
                f"unknown analytics algorithm {algorithm!r} "
                f"(known: {known})"
            )
        method, allowed = self._ANALYTICS[algorithm]
        options = message.get("options") or {}
        if not isinstance(options, dict):
            raise _BadRequest("analytics 'options' must be an object")
        unknown = sorted(set(options) - set(allowed))
        if unknown:
            raise _BadRequest(
                f"unknown {algorithm} options: {', '.join(unknown)} "
                f"(accepted: {', '.join(allowed)})"
            )
        if algorithm == "sssp":
            if not isinstance(options.get("source"), int):
                raise _BadRequest(
                    "sssp requires an integer options.source vertex id"
                )
        runner = getattr(self.store, method)
        with self._statement_budget(session):
            values = runner(
                time_budget_s=session.statement_timeout_s,
                cancel=self._draining.is_set,
                **options,
            )
        stats = self.store.last_analytics_stats
        return {
            "algorithm": algorithm,
            # wire rows, not a dict: JSON objects can't carry int keys
            "rows": [[vid, value] for vid, value in sorted(values.items())],
            "stats": stats.as_dict() if stats is not None else None,
        }

    # ------------------------------------------------------------------
    # sharding transport ops (batched primitives the scatter-gather
    # router fans out; see src/repro/sharding/router.py)
    # ------------------------------------------------------------------
    def _op_hop(self, session, message):
        """Resolve one adjacency hop for a batch of frontier vids.

        Returns the live EA rows whose ``outv`` (direction ``out``) or
        ``inv`` (direction ``in``) is in *vids*, optionally restricted
        to *labels*.  One indexed, plan-cached probe per frontier vid.
        """
        direction = _required(message, "direction")
        if direction not in ("out", "in"):
            raise _BadRequest("hop direction must be 'out' or 'in'")
        vids = message.get("vids") or []
        labels = message.get("labels") or []
        if not isinstance(vids, list) or not isinstance(labels, list):
            raise _BadRequest("hop 'vids' and 'labels' must be arrays")
        names = self.store.schema.table_names
        column = "outv" if direction == "out" else "inv"
        sql = (
            f"SELECT eid, outv, inv, lbl, attr FROM {names['ea']} "
            f"WHERE eid >= 0 AND {column} = ?"
        )
        if labels:
            placeholders = ", ".join("?" for _ in labels)
            sql += f" AND lbl IN ({placeholders})"
        rows = []
        with self._statement_budget(session):
            for vid in vids:
                result = self.store.database.execute(sql, [vid, *labels])
                rows.extend(result.rows)
        return {"rows": jsonable_rows(rows)}

    def _op_fetch(self, session, message):
        """Batched element fetch: live VA/EA rows for explicit ids, full
        per-shard scans (``all``), or element counts."""
        names = self.store.schema.table_names
        result = {}
        with self._statement_budget(session):
            if "vids" in message:
                vids = message["vids"]
                if not isinstance(vids, list):
                    raise _BadRequest("fetch 'vids' must be an array")
                sql = f"SELECT vid, attr FROM {names['va']} WHERE vid = ?"
                rows = []
                for vid in vids:
                    if not isinstance(vid, int) or vid < 0:
                        continue  # tombstones are negative; never match
                    rows.extend(self.store.database.execute(sql, [vid]).rows)
                result["vertices"] = jsonable_rows(rows)
            if "eids" in message:
                eids = message["eids"]
                if not isinstance(eids, list):
                    raise _BadRequest("fetch 'eids' must be an array")
                sql = (
                    f"SELECT eid, outv, inv, lbl, attr FROM {names['ea']} "
                    "WHERE eid = ?"
                )
                rows = []
                for eid in eids:
                    if not isinstance(eid, int) or eid < 0:
                        continue
                    rows.extend(self.store.database.execute(sql, [eid]).rows)
                result["edges"] = jsonable_rows(rows)
            what = message.get("all")
            if what == "vertices":
                rows = self.store.database.execute(
                    f"SELECT vid, attr FROM {names['va']} WHERE vid >= 0"
                ).rows
                result["vertices"] = jsonable_rows(rows)
            elif what == "edges":
                rows = self.store.database.execute(
                    f"SELECT eid, outv, inv, lbl, attr FROM {names['ea']} "
                    "WHERE eid >= 0"
                ).rows
                result["edges"] = jsonable_rows(rows)
            elif what == "counts":
                result["counts"] = {
                    "vertices": self.store.vertex_count(),
                    "edges": self.store.edge_count(),
                }
            elif what == "max_ids":
                max_vid = self.store.database.execute(
                    f"SELECT MAX(vid) FROM {names['va']} WHERE vid >= 0"
                ).scalar()
                max_eid = self.store.database.execute(
                    f"SELECT MAX(eid) FROM {names['ea']} WHERE eid >= 0"
                ).scalar()
                result["max_ids"] = {
                    "vid": max_vid or 0, "eid": max_eid or 0,
                }
            elif what is not None:
                raise _BadRequest(
                    "fetch 'all' must be one of vertices/edges/counts/"
                    "max_ids"
                )
        if not result:
            raise _BadRequest("fetch requires 'vids', 'eids' or 'all'")
        return result

    #: crud action -> (store method, required args, optional args)
    _CRUD = {
        "get_vertex": ("get_vertex", ("vertex_id",), ()),
        "get_edge": ("get_edge", ("edge_id",), ()),
        "add_vertex": ("add_vertex", (), ("vertex_id", "properties")),
        "add_edge": (
            "add_edge",
            ("out_vertex_id", "in_vertex_id", "label"),
            ("edge_id", "properties"),
        ),
        "remove_vertex": ("remove_vertex", ("vertex_id",), ()),
        "remove_edge": ("remove_edge", ("edge_id",), ()),
        "set_vertex_property": (
            "set_vertex_property", ("vertex_id", "key", "value"), ()
        ),
        "set_edge_property": (
            "set_edge_property", ("edge_id", "key", "value"), ()
        ),
    }

    def _op_crud(self, session, message):
        """One Blueprints mutation, routed to the owning shard by the
        coordinator.  Autocommits exactly like the embedded store."""
        action = _required(message, "action")
        spec = self._CRUD.get(action)
        if spec is None:
            known = ", ".join(sorted(self._CRUD))
            raise _BadRequest(
                f"unknown crud action {action!r} (known: {known})"
            )
        method, required, optional = spec
        kwargs = {}
        for name in required:
            kwargs[name] = _required(message, name)
        for name in optional:
            if message.get(name) is not None:
                kwargs[name] = message[name]
        with self._statement_budget(session):
            value = getattr(self.store, method)(**kwargs)
        if value is not None and hasattr(value, "id") and \
                hasattr(value, "properties"):
            # a get_* result: flatten the element to a JSON-able dict
            element = {"id": value.id, "properties": dict(value.properties)}
            if hasattr(value, "outv"):
                element.update(outv=value.outv, inv=value.inv,
                               label=value.label)
            value = element
        return {"value": value}

    _HANDLERS = {
        "ping": _op_ping,
        "analytics": _op_analytics,
        "gremlin": _op_gremlin,
        "run": _op_run,
        "sql": _op_sql,
        "begin": _op_begin,
        "commit": _op_commit,
        "rollback": _op_rollback,
        "set": _op_set,
        "stats": _op_stats,
        "shell": _op_shell,
        "hop": _op_hop,
        "fetch": _op_fetch,
        "crud": _op_crud,
    }

    # ------------------------------------------------------------------
    # statement budget
    # ------------------------------------------------------------------
    def _statement_budget(self, session):
        """Bound the statement's lock waits by the session's timeout."""
        budget = session.statement_timeout_s
        return self.store.database.locks.cap(budget)

    # ------------------------------------------------------------------
    # metrics / introspection
    # ------------------------------------------------------------------
    def _count(self, name):
        with self._counters_guard:
            setattr(self, name, getattr(self, name) + 1)
        if ENGINE_METRICS.enabled:
            ENGINE_METRICS.counter(f"server.{name}").inc()

    def _mirror_gauge(self, name, value):
        if ENGINE_METRICS.enabled:
            ENGINE_METRICS.gauge(name).set(value)

    def active_sessions(self):
        with self._sessions_guard:
            return [session.describe() for session, __ in
                    self._sessions.values()]

    def stats(self):
        """JSON-able serving-layer counters (the ``stats`` op payload)."""
        with self._sessions_guard:
            active = len(self._sessions)
        with self._counters_guard:
            latency = self.request_latency
            counters = {
                "requests": self.requests_served,
                "errors": self.errors_returned,
                "rejected_busy": self.rejected_busy,
                "rejected_shutdown": self.rejected_shutdown,
                "idle_reaped": self.idle_reaped,
                "statement_timeouts": self.statement_timeouts,
                "sessions_opened": self.sessions_opened,
                "protocol_errors": self.protocol_errors,
                "latency": {
                    "count": latency.count,
                    "mean_ms": latency.mean() * 1000.0,
                    "p50_ms": latency.quantile(0.5) * 1000.0,
                    "p95_ms": latency.quantile(0.95) * 1000.0,
                    "max_ms": (latency.maximum or 0.0) * 1000.0,
                },
            }
        return {
            "host": self.host,
            "port": self.port,
            "max_workers": self.max_workers,
            "max_queue": self.max_queue,
            "active_sessions": active,
            "queue_depth": self._pending.qsize(),
            "draining": self._draining.is_set(),
            # ANALYZE statistics snapshot: which tables the shared store's
            # cost-based planner currently has estimates for
            "optimizer_statistics": self._store_statistics(),
            **counters,
        }

    def _store_statistics(self):
        """Optimizer-statistics snapshot; a sharded coordinator has no
        local relational engine to snapshot."""
        return self.store.database.statistics.snapshot()

    def _stats_lines(self, session):
        """Server section appended to a remote ``:stats``."""
        stats = self.stats()
        latency = stats["latency"]
        return [
            "",
            f"server: {stats['active_sessions']} active sessions, "
            f"queue depth {stats['queue_depth']}, "
            f"{stats['requests']} requests "
            f"({stats['errors']} errors, {stats['rejected_busy']} busy-"
            f"rejected, {stats['idle_reaped']} idle-reaped, "
            f"{stats['statement_timeouts']} statement timeouts)",
            f"  latency: mean {latency['mean_ms']:.3f}ms, "
            f"p95 {latency['p95_ms']:.3f}ms over {latency['count']} requests",
            f"  this session: #{session.session_id} "
            f"({session.requests} requests"
            f"{', in transaction' if session.in_transaction else ''})",
        ]


class _BadRequest(Exception):
    """Request is structurally invalid (missing field, unknown op)."""


def _required(message, field):
    value = message.get(field)
    if value is None:
        raise _BadRequest(f"request needs a {field!r} field")
    return value
