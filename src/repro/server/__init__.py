"""The SQLGraph serving layer: wire protocol + threaded session server.

The paper evaluates SQLGraph as a *server* under a social-serving
workload; this package is that network front end for the reproduction:

* :mod:`repro.server.protocol` — length-prefixed, CRC-checked JSON
  frames, the versioned handshake, and the typed error-code vocabulary;
* :mod:`repro.server.session` — per-connection session state
  (transaction, statement timeout, activity clock);
* :mod:`repro.server.server` — :class:`SQLGraphServer`: accept loop,
  bounded worker pool + accept queue (admission control), idle reaping
  and graceful drain over one shared
  :class:`~repro.core.store.SQLGraphStore`.

``python -m repro.server`` (or the ``repro-serve`` entry point) boots a
standalone server; :class:`repro.client.SQLGraphClient` is the matching
client library.  See ``docs/SERVER.md``.
"""

from repro.server.protocol import (
    FrameAssembler,
    FrameError,
    ConnectionClosedError,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    WireError,
)
from repro.server.server import SQLGraphServer
from repro.server.session import Session

__all__ = [
    "ConnectionClosedError",
    "FrameAssembler",
    "FrameError",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "SQLGraphServer",
    "Session",
    "WireError",
]
