"""The SQLGraph wire protocol: framed JSON messages over a byte stream.

Every message — request, response, or error — is one *frame*::

    +----------------+----------------+======================+
    | length (u32le) | crc32 (u32le)  | payload (length B)   |
    +----------------+----------------+======================+

``payload`` is a UTF-8 JSON object.  The CRC32 covers the payload, so a
torn or bit-rotted frame is detected before JSON parsing; anything that
fails the length/CRC/JSON gate is a fatal :class:`FrameError` and the
connection is closed (stream framing cannot resynchronize after garbage).

Handshake
---------

The first frame on a connection must be a client *hello*::

    {"op": "hello", "protocol": 1, "client": "repro-client/1.0"}

The server answers with its own hello carrying the negotiated protocol
version and the assigned session id, or an ``UNSUPPORTED_PROTOCOL`` error
frame followed by a close when the major version does not match.

Requests and responses
----------------------

Requests carry a client-chosen ``id`` (echoed verbatim in the response so
clients can detect desynchronization) and an ``op``::

    {"id": 7, "op": "sql", "query": "SELECT ...", "params": [1]}

Success responses are ``{"id": 7, "ok": true, "result": {...}}``; failures
are ``{"id": 7, "ok": false, "error": {"code": "...", "message": "...",
"retryable": false}}``.  Error codes are the closed set below — clients
dispatch on the code, never on message text.  ``retryable`` errors left
the store unchanged; a client may safely re-send the same request.

See ``docs/SERVER.md`` for the full specification.
"""

from __future__ import annotations

import json
import struct
import zlib

from repro.graph.analytics import (
    AnalyticsCancelledError,
    AnalyticsError,
    AnalyticsTimeoutError,
)
from repro.gremlin.errors import (
    ClosureError,
    GremlinError,
    GremlinSyntaxError,
    UnsupportedPipeError,
)
from repro.relational.errors import (
    BindError,
    CatalogError,
    ConstraintError,
    LockTimeoutError,
    SqlSyntaxError,
    TransactionError,
    TypeMismatchError,
)

#: protocol major version; a client and server must agree exactly
PROTOCOL_VERSION = 1

#: frame header: payload length + CRC32 of the payload, little-endian u32s
FRAME = struct.Struct("<II")

#: refuse frames larger than this (defends the server against a garbage
#: length prefix allocating gigabytes)
MAX_FRAME_BYTES = 8 * 1024 * 1024


# ----------------------------------------------------------------------
# error codes
# ----------------------------------------------------------------------
#: framing / handshake / request-shape problems (fatal, connection closes)
PROTOCOL_ERROR = "PROTOCOL_ERROR"
UNSUPPORTED_PROTOCOL = "UNSUPPORTED_PROTOCOL"
BAD_REQUEST = "BAD_REQUEST"

#: serving-layer conditions
SERVER_BUSY = "SERVER_BUSY"
SHUTTING_DOWN = "SHUTTING_DOWN"
SESSION_IDLE = "SESSION_IDLE"
STATEMENT_TIMEOUT = "STATEMENT_TIMEOUT"

#: engine exceptions, by family
LOCK_TIMEOUT = "LOCK_TIMEOUT"
SQL_SYNTAX = "SQL_SYNTAX"
BIND_ERROR = "BIND_ERROR"
TYPE_MISMATCH = "TYPE_MISMATCH"
CONSTRAINT_VIOLATION = "CONSTRAINT_VIOLATION"
CATALOG_ERROR = "CATALOG_ERROR"
TRANSACTION_ERROR = "TRANSACTION_ERROR"
GREMLIN_ERROR = "GREMLIN_ERROR"
INTERNAL_ERROR = "INTERNAL_ERROR"

#: a sharded coordinator could not reach a worker shard
SHARD_UNAVAILABLE = "SHARD_UNAVAILABLE"

#: codes a client may retry without risking a duplicated effect: the
#: request was rejected before (or instead of) mutating the store
RETRYABLE_CODES = frozenset(
    {SERVER_BUSY, SHUTTING_DOWN, LOCK_TIMEOUT, STATEMENT_TIMEOUT}
)

#: every other code: retrying the same request verbatim cannot succeed
#: (bad input, schema problems) or may duplicate an effect the server
#: might already have applied (INTERNAL_ERROR mid-mutation).  The two
#: sets partition the code space; ``error-code-conformance`` checks that
#: no code is left unclassified and none appears in both.
NON_RETRYABLE_CODES = frozenset(
    {
        PROTOCOL_ERROR,
        UNSUPPORTED_PROTOCOL,
        BAD_REQUEST,
        SESSION_IDLE,
        SQL_SYNTAX,
        BIND_ERROR,
        TYPE_MISMATCH,
        CONSTRAINT_VIOLATION,
        CATALOG_ERROR,
        TRANSACTION_ERROR,
        GREMLIN_ERROR,
        INTERNAL_ERROR,
        SHARD_UNAVAILABLE,
    }
)

#: engine exception type -> wire error code (order matters: subclasses
#: before base classes)
_EXCEPTION_CODES = (
    (AnalyticsTimeoutError, STATEMENT_TIMEOUT),
    (AnalyticsCancelledError, SHUTTING_DOWN),
    (AnalyticsError, BAD_REQUEST),
    (LockTimeoutError, LOCK_TIMEOUT),
    (SqlSyntaxError, SQL_SYNTAX),
    (BindError, BIND_ERROR),
    (TypeMismatchError, TYPE_MISMATCH),
    (ConstraintError, CONSTRAINT_VIOLATION),
    (CatalogError, CATALOG_ERROR),
    (TransactionError, TRANSACTION_ERROR),
    (GremlinSyntaxError, GREMLIN_ERROR),
    (UnsupportedPipeError, GREMLIN_ERROR),
    (ClosureError, GREMLIN_ERROR),
    (GremlinError, GREMLIN_ERROR),
)


def code_for_exception(exc):
    """Map an engine exception to its wire error code.

    A :class:`WireError` keeps its own code — a coordinator relaying a
    worker shard's typed failure must not flatten it to INTERNAL_ERROR.
    """
    if isinstance(exc, WireError):
        return exc.code
    for exc_type, code in _EXCEPTION_CODES:
        if isinstance(exc, exc_type):
            return code
    return INTERNAL_ERROR


def error_payload(code, message, retryable=None):
    """The ``error`` object of a failure response.

    ``retryable`` defaults to the code's static classification; a caller
    that knows more about this *specific* failure (e.g. a coordinator
    that lost a shard mid-way through an idempotent read fan-out) may
    override it.
    """
    if retryable is None:
        retryable = code in RETRYABLE_CODES
    return {
        "code": code,
        "message": message,
        "retryable": retryable,
    }


class FrameError(Exception):
    """A frame failed the length/CRC/JSON gate; the stream is unusable."""


class ConnectionClosedError(Exception):
    """The peer closed (or half-closed) the connection."""


class WireError(Exception):
    """A typed error response from the server (client side).

    :ivar code: one of the error-code constants above.
    :ivar retryable: whether re-sending the same request is safe.
    """

    def __init__(self, code, message, retryable=False):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.retryable = retryable

    @classmethod
    def from_payload(cls, error):
        return cls(
            error.get("code", INTERNAL_ERROR),
            error.get("message", ""),
            bool(error.get("retryable", False)),
        )


# ----------------------------------------------------------------------
# encoding / decoding
# ----------------------------------------------------------------------
def encode_frame(message):
    """Serialize one JSON-able message into a framed byte string."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload):
    """Parse a verified payload; raises :class:`FrameError` on bad JSON."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame payload: {exc}") from None
    if not isinstance(message, dict):
        raise FrameError("frame payload must be a JSON object")
    return message


class FrameAssembler:
    """Incremental frame parser: feed bytes, take out decoded messages.

    The assembler owns the connection's receive buffer, so partial reads
    (half a header, a frame split across TCP segments) are handled
    naturally: :meth:`next_message` returns ``None`` until a whole intact
    frame is buffered.  Any framing violation raises :class:`FrameError` —
    the caller must answer with a ``PROTOCOL_ERROR`` frame and close.
    """

    def __init__(self, max_frame_bytes=MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    def feed(self, data):
        self._buffer.extend(data)

    def next_message(self):
        """Decode and remove the first buffered frame (``None`` if short)."""
        if len(self._buffer) < FRAME.size:
            return None
        length, crc = FRAME.unpack_from(self._buffer)
        if length > self.max_frame_bytes:
            raise FrameError(
                f"oversized frame: {length} bytes "
                f"(limit {self.max_frame_bytes})"
            )
        end = FRAME.size + length
        if len(self._buffer) < end:
            return None
        payload = bytes(self._buffer[FRAME.size:end])
        if zlib.crc32(payload) != crc:
            raise FrameError("frame CRC mismatch")
        del self._buffer[:end]
        return decode_payload(payload)

    @property
    def pending_bytes(self):
        return len(self._buffer)


# ----------------------------------------------------------------------
# socket helpers (blocking sockets, used by both client and server)
# ----------------------------------------------------------------------
RECV_CHUNK = 64 * 1024


def send_message(sock, message):
    """Frame and send one message over a blocking socket."""
    sock.sendall(encode_frame(message))


def recv_message(sock, assembler):
    """Block until one whole message arrives (honours the socket timeout).

    Returns ``None`` when the socket timeout expires with an *empty or
    incomplete* frame pending — callers poll this to interleave idle /
    shutdown checks.  Raises :class:`ConnectionClosedError` at EOF and
    :class:`FrameError` on framing violations.
    """
    import socket as _socket

    while True:
        message = assembler.next_message()
        if message is not None:
            return message
        try:
            data = sock.recv(RECV_CHUNK)
        except _socket.timeout:
            return None
        except OSError as exc:
            raise ConnectionClosedError(str(exc)) from None
        if not data:
            raise ConnectionClosedError("peer closed the connection")
        assembler.feed(data)


def jsonable_rows(rows):
    """Coerce result rows into JSON-marshallable lists."""
    return [list(row) for row in rows]
