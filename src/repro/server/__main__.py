"""``repro-serve`` / ``python -m repro.server`` — boot a SQLGraph server.

Usage::

    repro-serve --dataset tinker --port 7687
    repro-serve --path /var/lib/sqlgraph --dataset linkbench --scale 2
    repro-serve --port 0            # ephemeral port, printed on stdout

The process announces readiness by printing ``listening on HOST:PORT`` on
stdout (scripts and the CI harness parse this line).  ``SIGTERM`` or
``SIGINT`` triggers a graceful shutdown: in-flight requests drain, new
ones are rejected with ``SHUTTING_DOWN``, the store checkpoints, the WAL
closes, and the process exits 0.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.cli import build_store
from repro.server.server import SQLGraphServer


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-serve", description="SQLGraph network server"
    )
    parser.add_argument(
        "--dataset", default="tinker",
        choices=["tinker", "classic", "dbpedia", "linkbench"],
        help="graph to load when the store is empty",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="dataset size multiplier for dbpedia/linkbench",
    )
    parser.add_argument(
        "--path", default=None,
        help="directory for durable storage (WAL + checkpoints); "
        "reopening recovers the persisted graph",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=7687,
        help="TCP port (0 = ephemeral; the chosen port is printed)",
    )
    parser.add_argument(
        "--workers", type=int, default=8,
        help="worker pool size = concurrent session cap",
    )
    parser.add_argument(
        "--queue", type=int, default=16,
        help="accept queue bound; connections beyond it are fast-failed "
        "with SERVER_BUSY",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=300.0,
        help="seconds of silence before a session is reaped (0 disables)",
    )
    parser.add_argument(
        "--statement-timeout", type=float, default=0.0,
        help="default per-statement budget in seconds (0 disables)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=5.0,
        help="grace window for open transactions at shutdown",
    )
    parser.add_argument(
        "--shard-index", type=int, default=None,
        help="serve shard N of a hash-partitioned cluster: load only "
        "the dataset partition this shard owns (requires --shard-count)",
    )
    parser.add_argument(
        "--shard-count", type=int, default=None,
        help="total shards in the cluster (with --shard-index)",
    )
    args = parser.parse_args(argv)
    if (args.shard_index is None) != (args.shard_count is None):
        parser.error("--shard-index and --shard-count go together")
    if args.shard_index is not None and not (
            0 <= args.shard_index < args.shard_count):
        parser.error("--shard-index must be in [0, --shard-count)")

    # handlers go in before the readiness line prints: a supervisor may
    # SIGTERM us the instant it sees "listening on ..."
    stop = threading.Event()

    def _request_shutdown(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _request_shutdown)
    signal.signal(signal.SIGINT, _request_shutdown)

    store = build_store(
        args.dataset, args.scale, path=args.path,
        shard_index=args.shard_index, shard_count=args.shard_count,
    )
    server = SQLGraphServer(
        store,
        host=args.host,
        port=args.port,
        max_workers=args.workers,
        max_queue=args.queue,
        idle_timeout_s=args.idle_timeout or None,
        statement_timeout_s=args.statement_timeout or None,
        drain_timeout_s=args.drain_timeout,
    )
    server.start()
    print(f"listening on {server.host}:{server.port}", flush=True)
    stop.wait()
    print("shutting down: draining sessions", flush=True)
    server.shutdown()
    print("bye", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
