"""Per-connection session state for the SQLGraph server.

A session is born at handshake, lives exactly as long as its TCP
connection, and is always served by a single worker thread — that pins
the engine's thread-local machinery (current transaction, per-thread
``last_query_stats``, translation traces) to the session, which is what
makes one shared :class:`~repro.core.store.SQLGraphStore` safe to serve
to many clients.
"""

from __future__ import annotations

from time import monotonic


class Session:
    """State of one client connection.

    :param session_id: server-assigned number, stamped on observability
        records (slow-query log, EXPLAIN ANALYZE) via
        :mod:`repro.obs.context`.
    :param peer: ``"host:port"`` of the client.
    :param statement_timeout_s: default statement budget (``None`` = no
        limit); the client can override per session with the ``set`` op.
    """

    __slots__ = (
        "session_id", "peer", "created_at", "last_activity",
        "statement_timeout_s", "requests", "errors", "transaction",
        "client_name", "closing_reason",
    )

    def __init__(self, session_id, peer, statement_timeout_s=None):
        self.session_id = session_id
        self.peer = peer
        self.created_at = monotonic()
        self.last_activity = self.created_at
        self.statement_timeout_s = statement_timeout_s
        self.requests = 0
        self.errors = 0
        #: the session's open explicit transaction (None outside BEGIN)
        self.transaction = None
        self.client_name = None
        #: why the server is closing this session (wire error code), if any
        self.closing_reason = None

    @property
    def in_transaction(self):
        return self.transaction is not None and self.transaction.active

    def touch(self):
        self.last_activity = monotonic()

    def idle_for(self):
        return monotonic() - self.last_activity

    def describe(self):
        """JSON-able summary for the ``stats`` op and ``:stats``."""
        return {
            "id": self.session_id,
            "peer": self.peer,
            "client": self.client_name,
            "requests": self.requests,
            "errors": self.errors,
            "in_transaction": self.in_transaction,
            "idle_s": round(self.idle_for(), 3),
            "statement_timeout_s": self.statement_timeout_s,
        }
