"""Parser for Gremlin-Groovy pipeline text.

Supported query shape: ``g.<start>.<pipe>.<pipe>...`` where ``<start>`` is
``V`` / ``V(key, value)`` / ``v(id)`` / ``E`` / ``e(id)``, plus anonymous
pipelines ``_()...`` inside branch/filter pipe arguments.

Pipes with complex Groovy code (arbitrary closures beyond the restricted
closure language) are rejected, mirroring the paper's stated limitation.
"""

from __future__ import annotations

from repro.gremlin import closures as cl
from repro.gremlin import pipes as p
from repro.gremlin.errors import GremlinSyntaxError, UnsupportedPipeError
from repro.gremlin.lexer import tokenize


def parse_gremlin(text):
    """Parse Gremlin text into a :class:`~repro.gremlin.pipes.GremlinQuery`."""
    parser = _Parser(tokenize(text))
    query = parser.parse_query()
    parser.expect_eof()
    return query


class _Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    @property
    def current(self):
        return self._tokens[self._pos]

    def advance(self):
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def accept_op(self, op):
        if self.current.kind == "OP" and self.current.value == op:
            return self.advance()
        return None

    def expect_op(self, op):
        token = self.accept_op(op)
        if token is None:
            raise GremlinSyntaxError(
                f"expected {op!r}, found {self.current.value!r} at "
                f"{self.current.position}"
            )
        return token

    def expect_ident(self, value=None):
        token = self.current
        if token.kind != "IDENT" or (value is not None and token.value != value):
            raise GremlinSyntaxError(
                f"expected identifier{'' if value is None else ' ' + value}, "
                f"found {token.value!r} at {token.position}"
            )
        return self.advance().value

    def expect_eof(self):
        if self.current.kind != "EOF":
            raise GremlinSyntaxError(
                f"unexpected trailing input {self.current.value!r} at "
                f"{self.current.position}"
            )

    # ------------------------------------------------------------------
    # query / pipeline
    # ------------------------------------------------------------------
    def parse_query(self):
        self.expect_ident("g")
        self.expect_op(".")
        start = self.parse_start_pipe()
        pipes = [start]
        pipes.extend(self.parse_pipe_chain())
        return p.GremlinQuery(pipes)

    def parse_anonymous_pipeline(self):
        """``_()`` followed by a pipe chain — used in branch arguments."""
        self.expect_ident("_")
        self.expect_op("(")
        self.expect_op(")")
        return self.parse_pipe_chain()

    def parse_pipe_chain(self):
        pipes = []
        while self.accept_op("."):
            pipes.append(self.parse_pipe())
        return pipes

    def parse_start_pipe(self):
        name = self.expect_ident()
        args = self.parse_call_args() if self.current.value == "(" else []
        if name in ("V", "v"):
            return self._start_vertices(name, args)
        if name in ("E", "e"):
            return self._start_edges(name, args)
        raise GremlinSyntaxError(f"unknown start pipe {name!r}")

    def _start_vertices(self, name, args):
        if not args:
            return p.StartVertices()
        if name == "v" or all(isinstance(arg, (int, float)) for arg in args):
            return p.StartVertices(ids=[int(arg) for arg in args])
        if len(args) == 2 and isinstance(args[0], str):
            return p.StartVertices(key=args[0], value=args[1])
        raise GremlinSyntaxError(f"cannot interpret start pipe arguments {args!r}")

    def _start_edges(self, name, args):
        if not args:
            return p.StartEdges()
        if name == "e" or all(isinstance(arg, (int, float)) for arg in args):
            return p.StartEdges(ids=[int(arg) for arg in args])
        if len(args) == 2 and isinstance(args[0], str):
            return p.StartEdges(key=args[0], value=args[1])
        raise GremlinSyntaxError(f"cannot interpret start pipe arguments {args!r}")

    # ------------------------------------------------------------------
    # individual pipes
    # ------------------------------------------------------------------
    def parse_pipe(self):
        name = self.expect_ident()
        args = []
        closures = []
        branches = None
        if self.current.kind == "OP" and self.current.value == "(":
            args, branches = self.parse_call_args_and_branches()
        while self.current.kind == "OP" and self.current.value == "{":
            closures.append(self.parse_closure())
        return self._build_pipe(name, args, closures, branches)

    def parse_call_args(self):
        args, branches = self.parse_call_args_and_branches()
        if branches:
            raise GremlinSyntaxError("anonymous pipelines not allowed here")
        return args

    def parse_call_args_and_branches(self):
        """Parse ``( ... )``: literal args and/or ``_()`` pipelines."""
        self.expect_op("(")
        args = []
        branches = []
        if not self.accept_op(")"):
            while True:
                if self.current.kind == "IDENT" and self.current.value == "_":
                    branches.append(self.parse_anonymous_pipeline())
                else:
                    args.append(self.parse_argument())
                if self.accept_op(")"):
                    break
                self.expect_op(",")
        return args, branches

    def parse_argument(self):
        """One literal / token argument: number, string, T.op, identifier."""
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            return float(token.value) if "." in token.value or "e" in (
                token.value.lower()
            ) else int(token.value)
        if token.kind == "STRING":
            self.advance()
            return token.value
        if token.kind == "OP" and token.value == "-":
            self.advance()
            number = self.parse_argument()
            if not isinstance(number, (int, float)):
                raise GremlinSyntaxError("expected number after unary minus")
            return -number
        if token.kind == "OP" and token.value == "[":
            self.advance()
            items = []
            if not self.accept_op("]"):
                while True:
                    items.append(self.parse_argument())
                    if self.accept_op("]"):
                        break
                    self.expect_op(",")
            return items
        if token.kind == "IDENT":
            name = self.advance().value
            if name == "T" and self.accept_op("."):
                op_name = self.expect_ident()
                if op_name not in p.COMPARE_TOKENS:
                    raise GremlinSyntaxError(f"unknown comparison token T.{op_name}")
                return _CompareToken(p.COMPARE_TOKENS[op_name])
            if name == "true":
                return True
            if name == "false":
                return False
            if name == "null":
                return None
            return _VarName(name)
        raise GremlinSyntaxError(
            f"unexpected argument token {token.value!r} at {token.position}"
        )

    # ------------------------------------------------------------------
    # closures
    # ------------------------------------------------------------------
    def parse_closure(self):
        self.expect_op("{")
        body = self.parse_closure_or()
        self.expect_op("}")
        return body

    def parse_closure_or(self):
        left = self.parse_closure_and()
        while self.accept_op("||"):
            left = cl.BoolOr(left, self.parse_closure_and())
        return left

    def parse_closure_and(self):
        left = self.parse_closure_not()
        while self.accept_op("&&"):
            left = cl.BoolAnd(left, self.parse_closure_not())
        return left

    def parse_closure_not(self):
        if self.accept_op("!"):
            return cl.BoolNot(self.parse_closure_not())
        return self.parse_closure_comparison()

    def parse_closure_comparison(self):
        left = self.parse_closure_additive()
        for op in ("==", "!=", "<=", ">=", "<", ">"):
            if self.current.kind == "OP" and self.current.value == op:
                self.advance()
                right = self.parse_closure_additive()
                return cl.Compare(op, left, right)
        return left

    def parse_closure_additive(self):
        left = self.parse_closure_multiplicative()
        while True:
            if self.accept_op("+"):
                left = cl.Arith("+", left, self.parse_closure_multiplicative())
            elif self.accept_op("-"):
                left = cl.Arith("-", left, self.parse_closure_multiplicative())
            else:
                return left

    def parse_closure_multiplicative(self):
        left = self.parse_closure_unary()
        while True:
            if self.accept_op("*"):
                left = cl.Arith("*", left, self.parse_closure_unary())
            elif self.accept_op("/"):
                left = cl.Arith("/", left, self.parse_closure_unary())
            elif self.accept_op("%"):
                left = cl.Arith("%", left, self.parse_closure_unary())
            else:
                return left

    def parse_closure_unary(self):
        if self.accept_op("-"):
            operand = self.parse_closure_unary()
            if isinstance(operand, cl.Const) and isinstance(
                operand.value, (int, float)
            ):
                return cl.Const(-operand.value)
            return cl.Arith("-", cl.Const(0), operand)
        return self.parse_closure_postfix()

    def parse_closure_postfix(self):
        node = self.parse_closure_primary()
        while self.current.kind == "OP" and self.current.value == ".":
            # lookahead: `.name` (property) or `.method(arg)`
            after = self._tokens[self._pos + 1]
            if after.kind != "IDENT":
                break
            self.advance()
            name = self.advance().value
            if self.current.kind == "OP" and self.current.value == "(":
                if name not in ("contains", "startsWith", "endsWith"):
                    raise UnsupportedPipeError(
                        f"closure method {name!r} is outside the supported subset"
                    )
                self.expect_op("(")
                argument = self.parse_closure_or()
                self.expect_op(")")
                node = cl.StringMethod(name, node, argument)
            else:
                if not isinstance(node, cl.ItRef):
                    raise UnsupportedPipeError(
                        "nested property access is outside the supported subset"
                    )
                node = cl.PropRef(name)
        return node

    def parse_closure_primary(self):
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            text = token.value
            if "." in text or "e" in text.lower():
                return cl.Const(float(text))
            return cl.Const(int(text))
        if token.kind == "STRING":
            self.advance()
            return cl.Const(token.value)
        if token.kind == "IDENT":
            name = self.advance().value
            if name == "it":
                return cl.ItRef()
            if name == "true":
                return cl.Const(True)
            if name == "false":
                return cl.Const(False)
            if name == "null":
                return cl.Const(None)
            raise UnsupportedPipeError(
                f"closure variable {name!r} is outside the supported subset"
            )
        if self.accept_op("("):
            inner = self.parse_closure_or()
            self.expect_op(")")
            return inner
        raise GremlinSyntaxError(
            f"unexpected token {token.value!r} in closure at {token.position}"
        )

    # ------------------------------------------------------------------
    # pipe construction
    # ------------------------------------------------------------------
    def _build_pipe(self, name, args, closures, branches):
        branches = branches or []
        if name in ("out", "both"):
            return p.Adjacent(name, tuple(_strings(args)))
        if name == "in":
            return p.Adjacent("in", tuple(_strings(args)))
        if name in ("outE", "inE", "bothE"):
            return p.IncidentEdges(name[:-1], tuple(_strings(args)))
        if name in ("outV", "inV", "bothV"):
            return p.EdgeVertex(name[:-1])
        if name == "id":
            return p.IdGetter()
        if name == "label":
            return p.LabelGetter()
        if name == "property":
            return p.PropertyGetter(_one_string(args, name))
        if name == "has":
            return self._build_has(args)
        if name == "hasNot":
            return p.HasNotPipe(_one_string(args, name))
        if name == "interval":
            if len(args) != 3:
                raise GremlinSyntaxError("interval(key, low, high) takes 3 args")
            return p.IntervalPipe(args[0], args[1], args[2])
        if name == "filter":
            if len(closures) != 1:
                raise GremlinSyntaxError("filter requires one closure")
            return p.FilterClosurePipe(closures[0])
        if name == "dedup":
            return p.DedupPipe()
        if name == "count":
            return p.CountPipe()
        if name == "range":
            if len(args) != 2:
                raise GremlinSyntaxError("range(low, high) takes 2 args")
            return p.RangePipe(int(args[0]), int(args[1]))
        if name == "path":
            return p.PathPipe()
        if name == "simplePath":
            return p.SimplePathPipe()
        if name == "cyclicPath":
            return p.CyclicPathPipe()
        if name == "order":
            return p.OrderPipe()
        if name == "back":
            if len(args) != 1:
                raise GremlinSyntaxError("back takes one argument")
            target = args[0]
            if isinstance(target, _VarName):
                target = target.name
            return p.BackPipe(target)
        if name == "select":
            return p.SelectPipe(tuple(_strings(args)))
        if name == "as":
            return p.AsPipe(_one_string(args, name))
        if name == "aggregate":
            return p.AggregatePipe(_side_effect_name(args))
        if name == "store":
            return p.StorePipe(_side_effect_name(args))
        if name == "except":
            return self._except_retain(p.ExceptPipe, args)
        if name == "retain":
            return self._except_retain(p.RetainPipe, args)
        if name == "and":
            return p.AndPipe(branches)
        if name == "or":
            return p.OrPipe(branches)
        if name == "ifThenElse":
            if len(closures) != 3:
                raise GremlinSyntaxError("ifThenElse requires three closures")
            return p.IfThenElsePipe(closures[0], closures[1], closures[2])
        if name == "copySplit":
            if not branches:
                raise GremlinSyntaxError("copySplit requires pipeline branches")
            return p.CopySplitPipe(branches)
        if name in ("exhaustMerge", "fairMerge"):
            return p.MergePipe(fair=name == "fairMerge")
        if name == "loop":
            if len(args) != 1 or len(closures) != 1:
                raise GremlinSyntaxError("loop(n){condition} expected")
            return p.LoopPipe(int(args[0]), closures[0])
        if name == "table":
            return p.TablePipe(_side_effect_name(args) if args else None)
        if name == "groupCount":
            return p.GroupCountPipe(_side_effect_name(args) if args else None)
        if name == "sideEffect":
            return p.SideEffectClosurePipe(closures[0] if closures else None)
        if name == "iterate":
            return p.IteratePipe()
        if name == "cap":
            return p.CapPipe()
        # bare `.name` Groovy property shorthand
        if not args and not closures and not branches:
            return p.PropertyGetter(name)
        raise UnsupportedPipeError(f"unsupported pipe {name!r}")

    def _build_has(self, args):
        if not args:
            raise GremlinSyntaxError("has requires at least a key")
        key = args[0]
        if not isinstance(key, str):
            raise GremlinSyntaxError("has key must be a string")
        if len(args) == 1:
            return p.HasPipe(key, exists_only=True)
        if len(args) == 2:
            return p.HasPipe(key, "==", args[1])
        if len(args) == 3 and isinstance(args[1], _CompareToken):
            return p.HasPipe(key, args[1].op, args[2])
        raise GremlinSyntaxError(f"cannot interpret has arguments {args!r}")

    @staticmethod
    def _except_retain(cls, args):
        if len(args) == 1 and isinstance(args[0], (_VarName, str)):
            name = args[0].name if isinstance(args[0], _VarName) else args[0]
            return cls(name=name)
        if len(args) == 1 and isinstance(args[0], list):
            return cls(values=tuple(args[0]))
        return cls(values=tuple(args))


class _CompareToken:
    __slots__ = ("op",)

    def __init__(self, op):
        self.op = op


class _VarName:
    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name


def _strings(args):
    out = []
    for arg in args:
        if isinstance(arg, _VarName):
            out.append(arg.name)
        elif isinstance(arg, str):
            out.append(arg)
        else:
            raise GremlinSyntaxError(f"expected string argument, got {arg!r}")
    return out


def _one_string(args, pipe_name):
    strings = _strings(args)
    if len(strings) != 1:
        raise GremlinSyntaxError(f"{pipe_name} takes exactly one string argument")
    return strings[0]


def _side_effect_name(args):
    if len(args) != 1:
        raise GremlinSyntaxError("expected one collection name")
    arg = args[0]
    if isinstance(arg, _VarName):
        return arg.name
    if isinstance(arg, str):
        return arg
    raise GremlinSyntaxError(f"expected collection name, got {arg!r}")
