"""Gremlin (TinkerPop 2 style) query language support.

This package provides what the paper calls "Gremlin AST handling":

* :mod:`repro.gremlin.lexer` / :mod:`repro.gremlin.parser` — parse
  Gremlin-Groovy pipeline text like
  ``g.V.filter{it.tag=='w'}.both.dedup().count()`` into a pipe AST;
* :mod:`repro.gremlin.pipes` — the pipe AST node types (Table 5 of the
  paper: transform / filter / side-effect / branch pipes);
* :mod:`repro.gremlin.closures` — the restricted closure expression
  language the paper's translator accepts (simple arithmetic/comparison
  over ``it`` and its properties);
* :mod:`repro.gremlin.interpreter` — a reference pipe-at-a-time evaluator
  over any Blueprints-style store.  It defines the query semantics the
  SQL translator is differential-tested against, and it is the execution
  model of the baseline (Titan/Neo4j-like) stores.
"""

from repro.gremlin.interpreter import GremlinInterpreter
from repro.gremlin.parser import parse_gremlin

__all__ = ["GremlinInterpreter", "parse_gremlin"]
