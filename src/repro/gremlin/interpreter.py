"""Reference pipe-at-a-time Gremlin evaluator.

This is the semantics oracle for the SQL translator (differential tests) and
the execution model of the baseline stores: each traversal step invokes
Blueprints-style primitives on the store, one call per element, exactly like
the Titan/Neo4j Gremlin engines the paper compares against.

Stores can interpose on data access (to charge simulated client/server round
trips or count calls) by implementing the optional hook methods
``adjacent_vertices``, ``incident_edges``, ``edge_endpoint``,
``element_property`` and ``lookup_vertices``; otherwise the interpreter
falls back to direct element-object methods.
"""

from __future__ import annotations

from repro.graph.blueprints import Direction
from repro.gremlin import closures as cl
from repro.gremlin import pipes as p
from repro.gremlin.errors import GremlinError, UnsupportedPipeError
from repro.relational.index import total_order_key

_DIRECTIONS = {
    "out": Direction.OUT,
    "in": Direction.IN,
    "both": Direction.BOTH,
}


class Traverser:
    """One object moving through the pipeline, with its history."""

    __slots__ = ("obj", "path", "marks", "loops")

    def __init__(self, obj, path=(), marks=None, loops=1):
        self.obj = obj
        self.path = path
        self.marks = marks if marks is not None else {}
        self.loops = loops

    def step(self, obj, extends_path=True):
        path = self.path + (obj,) if extends_path else self.path
        return Traverser(obj, path, dict(self.marks), self.loops)

    def replace(self, obj):
        return Traverser(obj, self.path, dict(self.marks), self.loops)


def _element_key(obj):
    """Dedup/membership key: elements by (kind, id), values by value."""
    element_id = getattr(obj, "id", None)
    if element_id is not None and hasattr(obj, "get_property"):
        # only edges carry a label attribute in the property-graph model
        kind = "e" if hasattr(obj, "label") else "v"
        return (kind, element_id)
    if isinstance(obj, (list, tuple)):
        return tuple(_element_key(item) for item in obj)
    return obj


class GremlinInterpreter:
    """Evaluates parsed Gremlin queries over a Blueprints-style store."""

    def __init__(self, graph):
        self.graph = graph

    # ------------------------------------------------------------------
    # data-access indirection (stores may interpose for cost accounting)
    # ------------------------------------------------------------------
    def _adjacent(self, vertex, direction, labels):
        hook = getattr(self.graph, "adjacent_vertices", None)
        if hook is not None:
            return hook(vertex, direction, labels)
        return vertex.vertices(direction, labels)

    def _incident(self, vertex, direction, labels):
        hook = getattr(self.graph, "incident_edges", None)
        if hook is not None:
            return hook(vertex, direction, labels)
        return vertex.edges(direction, labels)

    def _endpoint(self, edge, direction):
        hook = getattr(self.graph, "edge_endpoint", None)
        if hook is not None:
            return hook(edge, direction)
        return edge.vertex(direction)

    def _property(self, element, key):
        hook = getattr(self.graph, "element_property", None)
        if hook is not None:
            return hook(element, key)
        if key == "id":
            return element.id
        if key == "label" and hasattr(element, "label"):
            # the element-label shorthand applies to edges only; a vertex
            # may legitimately carry a 'label' attribute (e.g. rdfs:label)
            return element.label
        return element.get_property(key)

    def _lookup_vertices(self, key, value):
        hook = getattr(self.graph, "lookup_vertices", None)
        if hook is not None:
            return hook(key, value)
        return (
            vertex
            for vertex in self.graph.vertices()
            if vertex.get_property(key) == value
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, query):
        """Evaluate *query*; returns the list of final objects."""
        env = {}
        pipes = self._graph_query_rewrite(list(query.pipes))
        traversers = [Traverser(None, ())]
        traversers = self._run_pipes(pipes, traversers, env)
        return [traverser.obj for traverser in traversers]

    def _graph_query_rewrite(self, pipes):
        """The GraphQuery optimization every real store performs (paper
        §4.5.1): ``g.V`` followed by an equality attribute filter becomes an
        indexed lookup when the store has an index on that attribute."""
        if len(pipes) < 2:
            return pipes
        start = pipes[0]
        follower = pipes[1]
        has_index = getattr(self.graph, "has_attribute_index", None)
        if (
            isinstance(start, p.StartVertices)
            and not start.ids
            and start.key is None
            and isinstance(follower, p.HasPipe)
            and follower.op == "=="
            and not follower.exists_only
            and has_index is not None
            and has_index(follower.key)
        ):
            merged = p.StartVertices(key=follower.key, value=follower.value)
            return [merged] + pipes[2:]
        return pipes

    # ------------------------------------------------------------------
    # pipeline driver
    # ------------------------------------------------------------------
    def _run_pipes(self, pipes, traversers, env):
        i = 0
        while i < len(pipes):
            pipe = pipes[i]
            if isinstance(pipe, p.LoopPipe):
                traversers = self._eval_loop(pipes, i, traversers, env)
                i += 1
                continue
            if isinstance(pipe, p.CopySplitPipe):
                merge = pipes[i + 1] if i + 1 < len(pipes) else None
                if not isinstance(merge, p.MergePipe):
                    raise GremlinError("copySplit must be followed by a merge pipe")
                traversers = self._eval_copysplit(pipe, merge, traversers, env)
                i += 2
                continue
            traversers = self._eval_pipe(pipe, traversers, env)
            i += 1
        return traversers

    # ------------------------------------------------------------------
    # single pipes
    # ------------------------------------------------------------------
    def _eval_pipe(self, pipe, traversers, env):
        if isinstance(pipe, p.StartVertices):
            return list(self._start_vertices(pipe))
        if isinstance(pipe, p.StartEdges):
            return list(self._start_edges(pipe))
        if isinstance(pipe, p.Adjacent):
            direction = _DIRECTIONS[pipe.direction]
            out = []
            for traverser in traversers:
                for vertex in self._adjacent(traverser.obj, direction, pipe.labels):
                    out.append(traverser.step(vertex))
            return out
        if isinstance(pipe, p.IncidentEdges):
            direction = _DIRECTIONS[pipe.direction]
            out = []
            for traverser in traversers:
                for edge in self._incident(traverser.obj, direction, pipe.labels):
                    out.append(traverser.step(edge))
            return out
        if isinstance(pipe, p.EdgeVertex):
            out = []
            for traverser in traversers:
                if pipe.direction == "both":
                    out.append(
                        traverser.step(self._endpoint(traverser.obj, Direction.OUT))
                    )
                    out.append(
                        traverser.step(self._endpoint(traverser.obj, Direction.IN))
                    )
                else:
                    direction = _DIRECTIONS[pipe.direction]
                    out.append(traverser.step(self._endpoint(traverser.obj, direction)))
            return out
        if isinstance(pipe, p.IdGetter):
            return [traverser.step(traverser.obj.id) for traverser in traversers]
        if isinstance(pipe, p.LabelGetter):
            # edges: the element label.  vertices: fall back to a 'label'
            # attribute (dropping misses), mirroring the SQL translation.
            out = []
            for traverser in traversers:
                value = self._property(traverser.obj, "label")
                if value is not None:
                    out.append(traverser.step(value))
            return out
        if isinstance(pipe, p.PropertyGetter):
            out = []
            for traverser in traversers:
                value = self._property(traverser.obj, pipe.key)
                if value is not None:
                    out.append(traverser.step(value))
            return out
        if isinstance(pipe, p.HasPipe):
            return [t for t in traversers if self._has_matches(pipe, t.obj)]
        if isinstance(pipe, p.HasNotPipe):
            return [
                t for t in traversers if self._property(t.obj, pipe.key) is None
            ]
        if isinstance(pipe, p.IntervalPipe):
            out = []
            for traverser in traversers:
                value = self._property(traverser.obj, pipe.key)
                if value is None:
                    continue
                try:
                    if pipe.low <= value < pipe.high:
                        out.append(traverser)
                except TypeError:
                    continue
            return out
        if isinstance(pipe, p.FilterClosurePipe):
            out = []
            for traverser in traversers:
                environment = cl.ClosureEnv(
                    traverser.obj, traverser.loops, self._closure_property
                )
                if cl.evaluate(pipe.closure, environment):
                    out.append(traverser)
            return out
        if isinstance(pipe, p.DedupPipe):
            seen = set()
            out = []
            for traverser in traversers:
                key = _element_key(traverser.obj)
                if key not in seen:
                    seen.add(key)
                    out.append(traverser)
            return out
        if isinstance(pipe, p.RangePipe):
            high = pipe.high
            out = []
            for position, traverser in enumerate(traversers):
                if position < pipe.low:
                    continue
                if high >= 0 and position > high:
                    break
                out.append(traverser)
            return out
        if isinstance(pipe, p.IdFilterPipe):
            return [t for t in traversers if t.obj.id == pipe.value]
        if isinstance(pipe, p.ExceptPipe):
            members = self._membership(pipe, env)
            return [t for t in traversers if _element_key(t.obj) not in members]
        if isinstance(pipe, p.RetainPipe):
            members = self._membership(pipe, env)
            return [t for t in traversers if _element_key(t.obj) in members]
        if isinstance(pipe, p.SimplePathPipe):
            return [
                t
                for t in traversers
                if len({_element_key(o) for o in t.path}) == len(t.path)
            ]
        if isinstance(pipe, p.CyclicPathPipe):
            return [
                t
                for t in traversers
                if len({_element_key(o) for o in t.path}) != len(t.path)
            ]
        if isinstance(pipe, p.AndPipe):
            return [
                t
                for t in traversers
                if all(self._branch_matches(branch, t, env) for branch in pipe.branches)
            ]
        if isinstance(pipe, p.OrPipe):
            return [
                t
                for t in traversers
                if any(self._branch_matches(branch, t, env) for branch in pipe.branches)
            ]
        if isinstance(pipe, p.PathPipe):
            return [t.replace(list(t.path)) for t in traversers]
        if isinstance(pipe, p.CountPipe):
            count = len(traversers)
            return [Traverser(count, (count,))]
        if isinstance(pipe, p.OrderPipe):
            ordered = sorted(
                traversers,
                key=lambda t: total_order_key(
                    t.obj if not hasattr(t.obj, "id") else t.obj.id
                ),
                reverse=pipe.descending,
            )
            return ordered
        if isinstance(pipe, p.BackPipe):
            return [self._back(t, pipe.target) for t in traversers]
        if isinstance(pipe, p.SelectPipe):
            out = []
            for traverser in traversers:
                row = []
                for name in pipe.names:
                    index = traverser.marks.get(name)
                    row.append(None if index is None else traverser.path[index])
                out.append(traverser.replace(row))
            return out
        if isinstance(pipe, p.AsPipe):
            for traverser in traversers:
                traverser.marks[pipe.name] = len(traverser.path) - 1
            return traversers
        if isinstance(pipe, p.AggregatePipe):
            bucket = env.setdefault(pipe.name, [])
            for traverser in traversers:
                bucket.append(traverser.obj)
            return traversers  # barrier: input fully drained above
        if isinstance(pipe, p.StorePipe):
            bucket = env.setdefault(pipe.name, [])
            for traverser in traversers:
                bucket.append(traverser.obj)
            return traversers
        if isinstance(pipe, p.TablePipe):
            rows = env.setdefault(("table", pipe.name), [])
            for traverser in traversers:
                rows.append(
                    {
                        name: traverser.path[index]
                        for name, index in traverser.marks.items()
                    }
                )
            return traversers
        if isinstance(pipe, p.GroupCountPipe):
            counts = env.setdefault(("groupCount", pipe.name), {})
            for traverser in traversers:
                key = _element_key(traverser.obj)
                counts[key] = counts.get(key, 0) + 1
            return traversers
        if isinstance(pipe, (p.SideEffectClosurePipe, p.IteratePipe, p.CapPipe)):
            return traversers
        if isinstance(pipe, p.IfThenElsePipe):
            out = []
            for traverser in traversers:
                environment = cl.ClosureEnv(
                    traverser.obj, traverser.loops, self._closure_property
                )
                branch = (
                    pipe.then_closure
                    if cl.evaluate(pipe.condition, environment)
                    else pipe.else_closure
                )
                out.append(traverser.step(cl.evaluate(branch, environment)))
            return out
        if isinstance(pipe, p.MergePipe):
            raise GremlinError("merge pipe without a preceding copySplit")
        raise UnsupportedPipeError(f"interpreter cannot evaluate {pipe!r}")

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _closure_property(self, obj, name):
        if hasattr(obj, "get_property"):
            return self._property(obj, name)
        return cl._default_property(obj, name)

    def _start_vertices(self, pipe):
        if pipe.ids:
            for vertex_id in pipe.ids:
                vertex = self.graph.get_vertex(vertex_id)
                if vertex is not None:
                    yield Traverser(vertex, (vertex,))
            return
        if pipe.key is not None:
            for vertex in self._lookup_vertices(pipe.key, pipe.value):
                yield Traverser(vertex, (vertex,))
            return
        for vertex in self.graph.vertices():
            yield Traverser(vertex, (vertex,))

    def _start_edges(self, pipe):
        if pipe.ids:
            for edge_id in pipe.ids:
                edge = self.graph.get_edge(edge_id)
                if edge is not None:
                    yield Traverser(edge, (edge,))
            return
        for edge in self.graph.edges():
            if pipe.key is not None and self._property(edge, pipe.key) != pipe.value:
                continue
            yield Traverser(edge, (edge,))

    def _has_matches(self, pipe, obj):
        value = self._property(obj, pipe.key)
        if pipe.exists_only:
            return value is not None
        return bool(cl._compare(pipe.op, value, pipe.value))

    def _membership(self, pipe, env):
        if pipe.name is not None:
            values = env.get(pipe.name, [])
        else:
            values = pipe.values or ()
        members = set()
        for value in values:
            members.add(_element_key(value))
            if isinstance(value, int):
                # bare ids in except([1,2]) / retain([1,2]) match elements
                members.add(("v", value))
                members.add(("e", value))
        return members

    def _branch_matches(self, branch, traverser, env):
        seed = [Traverser(traverser.obj, (traverser.obj,))]
        result = self._run_pipes(list(branch), seed, env)
        return bool(result)

    def _back(self, traverser, target):
        if isinstance(target, int):
            index = len(traverser.path) - 1 - target
        else:
            index = traverser.marks.get(target)
            if index is None:
                raise GremlinError(f"back target {target!r} was never marked")
        if index < 0 or index >= len(traverser.path):
            raise GremlinError(f"back target {target!r} out of range")
        obj = traverser.path[index]
        new = Traverser(
            obj, traverser.path[: index + 1], dict(traverser.marks), traverser.loops
        )
        return new

    def _eval_loop(self, pipes, position, traversers, env):
        pipe = pipes[position]
        start = position - pipe.back_steps
        if start < 0:
            raise GremlinError("loop rewinds past the start of the pipeline")
        segment = pipes[start:position]
        emitted = []
        frontier = [
            Traverser(t.obj, t.path, dict(t.marks), 1) for t in traversers
        ]
        guard = 0
        while frontier:
            guard += 1
            if guard > 10_000:
                raise GremlinError("loop exceeded iteration guard")
            continuing = []
            for traverser in frontier:
                environment = cl.ClosureEnv(
                    traverser.obj, traverser.loops, self._closure_property
                )
                if cl.evaluate(pipe.condition, environment):
                    continuing.append(traverser)
                else:
                    emitted.append(traverser)
            if not continuing:
                break
            advanced = self._run_pipes(list(segment), continuing, env)
            frontier = [
                Traverser(t.obj, t.path, dict(t.marks), t.loops + 1)
                for t in advanced
            ]
        return emitted

    def _eval_copysplit(self, split, merge, traversers, env):
        per_branch = []
        for branch in split.branches:
            seeds = [
                Traverser(t.obj, t.path, dict(t.marks), t.loops) for t in traversers
            ]
            per_branch.append(self._run_pipes(list(branch), seeds, env))
        if not merge.fair:
            merged = []
            for results in per_branch:
                merged.extend(results)
            return merged
        merged = []
        position = 0
        while any(position < len(results) for results in per_branch):
            for results in per_branch:
                if position < len(results):
                    merged.append(results[position])
            position += 1
        return merged
