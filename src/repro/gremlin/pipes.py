"""Pipe AST nodes — the four Gremlin operation categories of paper Table 5.

Every node records its category (``transform`` / ``filter`` /
``side_effect`` / ``branch``) and whether it changes the traversed object
(``extends_path``), which drives path tracking in both the interpreter and
the SQL translator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

TRANSFORM = "transform"
FILTER = "filter"
SIDE_EFFECT = "side_effect"
BRANCH = "branch"

# comparison tokens accepted by has(): T.eq, T.neq, ...
COMPARE_TOKENS = {
    "eq": "==",
    "neq": "!=",
    "lt": "<",
    "lte": "<=",
    "gt": ">",
    "gte": ">=",
}


class Pipe:
    category = TRANSFORM
    extends_path = False
    #: sharding metadata: ``True`` when evaluating the pipe never leaves
    #: the shard that owns its input elements (pure filters, property
    #: access, side effects over already-materialized traversers).
    #: Adjacency hops and pipes that embed sub-pipelines are ``False`` —
    #: the scatter-gather router must take over for those.
    shard_local = True


# ----------------------------------------------------------------------
# start pipes
# ----------------------------------------------------------------------
@dataclass
class StartVertices(Pipe):
    """``g.V``, ``g.V(key, value)`` or ``g.v(id, ...)``."""

    ids: list = field(default_factory=list)
    key: str | None = None
    value: object = None
    category = TRANSFORM
    extends_path = True
    # start placement is the router's decision (which shards own the
    # seed ids), not a local property of the pipe
    shard_local = False


@dataclass
class StartEdges(Pipe):
    """``g.E`` or ``g.e(id, ...)``."""

    ids: list = field(default_factory=list)
    key: str | None = None
    value: object = None
    category = TRANSFORM
    extends_path = True
    shard_local = False


# ----------------------------------------------------------------------
# transform pipes
# ----------------------------------------------------------------------
@dataclass
class Adjacent(Pipe):
    """``out`` / ``in`` / ``both`` (vertex to adjacent vertices)."""

    direction: str  # 'out' | 'in' | 'both'
    labels: tuple = ()
    category = TRANSFORM
    extends_path = True
    shard_local = False


@dataclass
class IncidentEdges(Pipe):
    """``outE`` / ``inE`` / ``bothE`` (vertex to incident edges)."""

    direction: str
    labels: tuple = ()
    category = TRANSFORM
    extends_path = True
    shard_local = False


@dataclass
class EdgeVertex(Pipe):
    """``outV`` / ``inV`` / ``bothV`` (edge to its endpoint(s))."""

    direction: str
    category = TRANSFORM
    extends_path = True
    shard_local = False


@dataclass
class IdGetter(Pipe):
    category = TRANSFORM
    extends_path = True


@dataclass
class LabelGetter(Pipe):
    category = TRANSFORM
    extends_path = True


@dataclass
class PropertyGetter(Pipe):
    """``property('name')`` or the bare ``.name`` Groovy shorthand."""

    key: str
    category = TRANSFORM
    extends_path = True


@dataclass
class PathPipe(Pipe):
    category = TRANSFORM
    extends_path = False


@dataclass
class CountPipe(Pipe):
    category = TRANSFORM
    extends_path = False


@dataclass
class OrderPipe(Pipe):
    descending: bool = False
    category = TRANSFORM
    extends_path = False


@dataclass
class BackPipe(Pipe):
    """``back(n)`` or ``back('name')`` — rewind to an earlier step."""

    target: object  # int or str
    category = TRANSFORM
    extends_path = False


@dataclass
class SelectPipe(Pipe):
    """``select('a','b')`` — project named steps (interpreter only)."""

    names: tuple = ()
    category = TRANSFORM
    extends_path = False


# ----------------------------------------------------------------------
# filter pipes
# ----------------------------------------------------------------------
@dataclass
class HasPipe(Pipe):
    """``has(key)``, ``has(key, value)`` or ``has(key, T.op, value)``.

    ``value is None`` with ``op == 'exists'`` is the existence test.
    Keys ``label`` and ``id`` address the element label / id.
    """

    key: str
    op: str = "=="
    value: object = None
    exists_only: bool = False
    category = FILTER


@dataclass
class HasNotPipe(Pipe):
    key: str
    category = FILTER


@dataclass
class IntervalPipe(Pipe):
    """``interval(key, low, high)`` — low <= value < high."""

    key: str
    low: object
    high: object
    category = FILTER


@dataclass
class FilterClosurePipe(Pipe):
    closure: object  # ClosureNode
    category = FILTER


@dataclass
class DedupPipe(Pipe):
    category = FILTER


@dataclass
class RangePipe(Pipe):
    """``range(low, high)`` / ``[low..high]`` — inclusive positions."""

    low: int
    high: int
    category = FILTER


@dataclass
class IdFilterPipe(Pipe):
    """Equality filter on the element/value itself (used by templates)."""

    value: object
    category = FILTER


@dataclass
class ExceptPipe(Pipe):
    """``except(x)`` — drop objects present in collection/step x."""

    name: str | None = None
    values: tuple | None = None
    category = FILTER


@dataclass
class RetainPipe(Pipe):
    name: str | None = None
    values: tuple | None = None
    category = FILTER


@dataclass
class SimplePathPipe(Pipe):
    category = FILTER


@dataclass
class CyclicPathPipe(Pipe):
    category = FILTER


@dataclass
class AndPipe(Pipe):
    branches: list = field(default_factory=list)  # anonymous pipelines
    category = FILTER
    # embedded sub-pipelines may contain adjacency hops
    shard_local = False


@dataclass
class OrPipe(Pipe):
    branches: list = field(default_factory=list)
    category = FILTER
    shard_local = False


@dataclass
class BackFilterPipe(Pipe):
    """Filter form of back: keep objects whose sub-traversal matches."""

    branch: list = field(default_factory=list)
    category = FILTER
    shard_local = False


# ----------------------------------------------------------------------
# side-effect pipes (identity under translation, per paper §4.4)
# ----------------------------------------------------------------------
@dataclass
class AsPipe(Pipe):
    name: str
    category = SIDE_EFFECT


@dataclass
class AggregatePipe(Pipe):
    name: str
    category = SIDE_EFFECT


@dataclass
class StorePipe(Pipe):
    name: str
    category = SIDE_EFFECT


@dataclass
class TablePipe(Pipe):
    name: str | None = None
    category = SIDE_EFFECT


@dataclass
class GroupCountPipe(Pipe):
    name: str | None = None
    category = SIDE_EFFECT


@dataclass
class SideEffectClosurePipe(Pipe):
    closure: object = None
    category = SIDE_EFFECT


@dataclass
class IteratePipe(Pipe):
    category = SIDE_EFFECT


@dataclass
class CapPipe(Pipe):
    category = SIDE_EFFECT


# ----------------------------------------------------------------------
# branch pipes
# ----------------------------------------------------------------------
@dataclass
class IfThenElsePipe(Pipe):
    condition: object  # ClosureNode
    then_closure: object  # ClosureNode (value to emit)
    else_closure: object
    category = BRANCH


@dataclass
class CopySplitPipe(Pipe):
    branches: list = field(default_factory=list)  # anonymous pipelines
    category = BRANCH
    shard_local = False


@dataclass
class MergePipe(Pipe):
    """``exhaustMerge`` / ``fairMerge`` terminating a copySplit."""

    fair: bool = False
    category = BRANCH


@dataclass
class LoopPipe(Pipe):
    """``loop(n){cond}`` — repeat the previous *n* pipes while cond holds."""

    back_steps: int
    condition: object  # ClosureNode over it.loops (and maybe it)
    category = BRANCH
    # the looped section may contain adjacency hops
    shard_local = False


@dataclass
class GremlinQuery:
    """A parsed pipeline: an ordered list of pipes."""

    pipes: list

    def __iter__(self):
        return iter(self.pipes)

    def __len__(self):
        return len(self.pipes)
