"""Tokenizer for the Gremlin-Groovy pipeline subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.gremlin.errors import GremlinSyntaxError

OPERATORS = [
    "==", "!=", "<=", ">=", "&&", "||", "..", "<", ">", "!", "(", ")", "{",
    "}", "[", "]", ",", ".", "+", "-", "*", "/", "%", "=",
]


@dataclass(frozen=True)
class Token:
    kind: str  # IDENT, NUMBER, STRING, OP, EOF
    value: str
    position: int


def tokenize(text):
    tokens = []
    i = 0
    n = len(text)
    while i < n:
        char = text[i]
        if char in " \t\r\n":
            i += 1
            continue
        if text.startswith("//", i):
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if char in "'\"":
            value, i = _read_string(text, i, char)
            tokens.append(Token("STRING", value, i))
            continue
        if char.isdigit():
            value, i = _read_number(text, i)
            tokens.append(Token("NUMBER", value, i))
            continue
        if char.isalpha() or char == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            tokens.append(Token("IDENT", text[start:i], start))
            continue
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, i))
                i += len(op)
                matched = True
                break
        if not matched:
            raise GremlinSyntaxError(f"unexpected character {char!r} at {i}")
    tokens.append(Token("EOF", "", n))
    return tokens


def _read_string(text, start, quote):
    parts = []
    i = start + 1
    n = len(text)
    while i < n:
        char = text[i]
        if char == "\\" and i + 1 < n:
            escape = text[i + 1]
            parts.append({"n": "\n", "t": "\t"}.get(escape, escape))
            i += 2
            continue
        if char == quote:
            return "".join(parts), i + 1
        parts.append(char)
        i += 1
    raise GremlinSyntaxError(f"unterminated string starting at {start}")


def _read_number(text, start):
    i = start
    n = len(text)
    while i < n and text[i].isdigit():
        i += 1
    # ".." is a range operator, a single "." a decimal point
    if i < n and text[i] == "." and not text.startswith("..", i):
        if i + 1 < n and text[i + 1].isdigit():
            i += 1
            while i < n and text[i].isdigit():
                i += 1
    if i < n and text[i] in "eE" and i + 1 < n and (
        text[i + 1].isdigit() or text[i + 1] in "+-"
    ):
        i += 2
        while i < n and text[i].isdigit():
            i += 1
    return text[start:i], i
