"""The restricted Groovy-closure expression language.

The paper's translator only accepts closures built from simple arithmetic
and comparison operators over ``it`` (the current traverser object), its
properties (``it.age``), and the loop counter (``it.loops``).  We add three
convenience string methods (``contains`` / ``startsWith`` / ``endsWith``)
that map cleanly to SQL LIKE.

Closure ASTs are evaluated two ways:

* :func:`evaluate` — directly, by the reference interpreter;
* :meth:`repro.core.translator.GremlinTranslator` — compiled to SQL
  predicates over the JSON attribute tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gremlin.errors import ClosureError


class ClosureNode:
    """Base class of closure expression nodes."""


@dataclass(frozen=True)
class ItRef(ClosureNode):
    """The bare ``it`` object."""


@dataclass(frozen=True)
class PropRef(ClosureNode):
    """``it.<name>`` — a property of the current object.

    ``it.loops`` is the loop counter; ``it.id`` / ``it.label`` are element
    id and label.
    """

    name: str


@dataclass(frozen=True)
class Const(ClosureNode):
    value: object


@dataclass(frozen=True)
class Compare(ClosureNode):
    op: str  # == != < <= > >=
    left: ClosureNode
    right: ClosureNode


@dataclass(frozen=True)
class BoolAnd(ClosureNode):
    left: ClosureNode
    right: ClosureNode


@dataclass(frozen=True)
class BoolOr(ClosureNode):
    left: ClosureNode
    right: ClosureNode


@dataclass(frozen=True)
class BoolNot(ClosureNode):
    operand: ClosureNode


@dataclass(frozen=True)
class Arith(ClosureNode):
    op: str  # + - * / %
    left: ClosureNode
    right: ClosureNode


@dataclass(frozen=True)
class StringMethod(ClosureNode):
    """``it.name.contains('x')`` and friends."""

    method: str  # contains | startsWith | endsWith
    target: ClosureNode
    argument: ClosureNode


class ClosureEnv:
    """Evaluation environment: the current object and the loop counter."""

    __slots__ = ("obj", "loops", "property_getter")

    def __init__(self, obj, loops=1, property_getter=None):
        self.obj = obj
        self.loops = loops
        self.property_getter = property_getter


def _default_property(obj, name):
    getter = getattr(obj, "get_property", None)
    if getter is not None:
        if name == "id":
            return obj.id
        if name == "label":
            return getattr(obj, "label", None)
        return getter(name)
    if isinstance(obj, dict):
        return obj.get(name)
    raise ClosureError(f"object {obj!r} has no property {name!r}")


def evaluate(node, env):
    """Evaluate a closure AST; missing properties behave as null (None)."""
    if isinstance(node, ItRef):
        return env.obj
    if isinstance(node, PropRef):
        if node.name == "loops":
            return env.loops
        getter = env.property_getter or _default_property
        return getter(env.obj, node.name)
    if isinstance(node, Const):
        return node.value
    if isinstance(node, Compare):
        left = evaluate(node.left, env)
        right = evaluate(node.right, env)
        return _compare(node.op, left, right)
    if isinstance(node, BoolAnd):
        return bool(evaluate(node.left, env)) and bool(evaluate(node.right, env))
    if isinstance(node, BoolOr):
        return bool(evaluate(node.left, env)) or bool(evaluate(node.right, env))
    if isinstance(node, BoolNot):
        return not evaluate(node.operand, env)
    if isinstance(node, Arith):
        left = evaluate(node.left, env)
        right = evaluate(node.right, env)
        if left is None or right is None:
            return None
        if node.op == "+":
            return left + right
        if node.op == "-":
            return left - right
        if node.op == "*":
            return left * right
        if node.op == "/":
            return None if right == 0 else left / right
        if node.op == "%":
            return None if right == 0 else left % right
    if isinstance(node, StringMethod):
        target = evaluate(node.target, env)
        argument = evaluate(node.argument, env)
        if not isinstance(target, str) or not isinstance(argument, str):
            return False
        if node.method == "contains":
            return argument in target
        if node.method == "startsWith":
            return target.startswith(argument)
        if node.method == "endsWith":
            return target.endswith(argument)
    raise ClosureError(f"cannot evaluate closure node {node!r}")


def _compare(op, left, right):
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if left is None or right is None:
        return False
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise ClosureError(f"unknown comparison {op!r}")


def references_only_loops(node):
    """True if the closure only references ``it.loops`` (loop conditions)."""
    if isinstance(node, PropRef):
        return node.name == "loops"
    if isinstance(node, ItRef):
        return False
    if isinstance(node, Const):
        return True
    for attr in ("left", "right", "operand", "target", "argument"):
        child = getattr(node, attr, None)
        if isinstance(child, ClosureNode) and not references_only_loops(child):
            return False
    return True


def max_loops_bound(node):
    """Extract a static loop bound from ``it.loops < N`` style conditions.

    Returns the largest number of section executions implied by the
    condition, or ``None`` when the depth cannot be determined statically.
    The loop counter starts at 1 when a traverser first reaches the loop
    pipe; the condition keeps the traverser looping while true.
    """
    if isinstance(node, Compare):
        loops_left = isinstance(node.left, PropRef) and node.left.name == "loops"
        loops_right = isinstance(node.right, PropRef) and node.right.name == "loops"
        if loops_left and isinstance(node.right, Const) and isinstance(
            node.right.value, (int, float)
        ):
            bound = node.right.value
            if node.op == "<":
                return int(bound)
            if node.op == "<=":
                return int(bound) + 1
        if loops_right and isinstance(node.left, Const) and isinstance(
            node.left.value, (int, float)
        ):
            bound = node.left.value
            if node.op == ">":
                return int(bound)
            if node.op == ">=":
                return int(bound) + 1
    return None
