"""Exceptions for the Gremlin subsystem."""


class GremlinError(Exception):
    """Base class for Gremlin parsing/evaluation/translation errors."""


class GremlinSyntaxError(GremlinError):
    """The query text could not be tokenized or parsed."""


class UnsupportedPipeError(GremlinError):
    """A pipe is outside the supported (side-effect-free) subset."""


class ClosureError(GremlinError):
    """A closure uses constructs outside the restricted closure language."""
