"""SQLGraph: an efficient relational-based property graph store.

A reproduction of Sun et al., SIGMOD 2015.  The three entry points most
users need:

* :class:`repro.core.SQLGraphStore` — the property graph store (load a
  graph, run Gremlin, CRUD);
* :class:`repro.graph.PropertyGraph` — the in-memory graph object model;
* :class:`repro.relational.Database` — the underlying relational engine.

See README.md for a tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for the paper-vs-measured evaluation record.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
